#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "md/cell_list.hpp"
#include "util/error.hpp"

namespace wsmd::md {

NeighborList::NeighborList(double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
  WSMD_REQUIRE(cutoff_ > 0.0, "cutoff must be positive");
  WSMD_REQUIRE(skin_ >= 0.0, "skin must be non-negative");
}

void NeighborList::build(const Box& box, const std::vector<Vec3d>& positions) {
  const std::size_t n = positions.size();
  WSMD_REQUIRE(n > 0, "cannot build a neighbor list for zero atoms");
  // Minimum-image convention requires at most one periodic image of any
  // neighbor within the cutoff; otherwise the physics is silently wrong.
  // (Checked at the cutoff, not the list radius: the list only promises
  // completeness within cutoff, skin entries are rebuild slack.)
  CellList::require_min_image(box, cutoff_);
  CellList cl;
  cl.build(box, positions, list_radius());

  offsets_.assign(n + 1, 0);
  indices_.clear();
  std::vector<std::uint32_t> scratch;
  scratch.reserve(128);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.clear();
    cl.for_each_neighbor(i, [&](std::size_t j, const Vec3d&, double) {
      scratch.push_back(static_cast<std::uint32_t>(j));
    });
    // Ascending order keeps the CSR layout — and therefore the FP summation
    // order of every force/density loop over it — independent of the cell
    // traversal.
    std::sort(scratch.begin(), scratch.end());
    offsets_[i + 1] = offsets_[i] + scratch.size();
    indices_.insert(indices_.end(), scratch.begin(), scratch.end());
  }

  reference_positions_ = positions;
  ++rebuilds_;
}

bool NeighborList::ensure_current(const Box& box,
                                  const std::vector<Vec3d>& positions) {
  if (reference_positions_.size() != positions.size()) {
    build(box, positions);
    return true;
  }
  const double trigger = 0.5 * skin_;
  const double trigger2 = trigger * trigger;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3d d =
        box.minimum_image(reference_positions_[i], positions[i]);
    if (norm2(d) > trigger2) {
      build(box, positions);
      return true;
    }
  }
  return false;
}

void NeighborList::build(const Box& box, const Vec3dPlanes& positions) {
  // Rebuilds are rare (every ~10-100 steps with a sane skin); one AoS copy
  // here is noise next to the cell-list walk and keeps CellList unchanged.
  build(box, positions.to_aos());
}

bool NeighborList::ensure_current(const Box& box,
                                  const Vec3dPlanes& positions) {
  if (reference_positions_.size() != positions.size()) {
    build(box, positions);
    return true;
  }
  const double trigger = 0.5 * skin_;
  const double trigger2 = trigger * trigger;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3d d =
        box.minimum_image(reference_positions_[i], positions.get(i));
    if (norm2(d) > trigger2) {
      build(box, positions);
      return true;
    }
  }
  return false;
}

}  // namespace wsmd::md
