#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wsmd::md {

NeighborList::NeighborList(double cutoff, double skin)
    : cutoff_(cutoff), skin_(skin) {
  WSMD_REQUIRE(cutoff_ > 0.0, "cutoff must be positive");
  WSMD_REQUIRE(skin_ >= 0.0, "skin must be non-negative");
}

void NeighborList::build(const Box& box, const std::vector<Vec3d>& positions) {
  const std::size_t n = positions.size();
  WSMD_REQUIRE(n > 0, "cannot build a neighbor list for zero atoms");
  // Minimum-image convention requires at most one periodic image of any
  // neighbor within the cutoff; otherwise the physics is silently wrong.
  for (std::size_t a = 0; a < 3; ++a) {
    if (box.periodic[a]) {
      WSMD_REQUIRE(box.length(static_cast<int>(a)) >= 2.0 * cutoff_,
                   "periodic box length " << box.length(static_cast<int>(a))
                                          << " < 2*cutoff " << 2.0 * cutoff_
                                          << " on axis " << a);
    }
  }
  const double rlist = list_radius();
  const double rlist2 = rlist * rlist;

  // Bin atoms into cells of edge >= rlist over the atoms' bounding region.
  // For periodic axes the box bounds are authoritative; for open axes the
  // atom extrema are (atoms may drift outside the nominal box).
  Vec3d lo = box.lo, hi = box.hi;
  for (std::size_t a = 0; a < 3; ++a) {
    if (box.periodic[a]) continue;
    double mn = positions[0][a], mx = positions[0][a];
    for (const auto& r : positions) {
      mn = std::min(mn, r[a]);
      mx = std::max(mx, r[a]);
    }
    lo[a] = mn - 1e-9;
    hi[a] = mx + 1e-9;
  }

  int ncell[3];
  double cell_edge[3];
  for (std::size_t a = 0; a < 3; ++a) {
    const double len = hi[a] - lo[a];
    ncell[a] = std::max(1, static_cast<int>(std::floor(len / rlist)));
    // Periodic axes require the cutoff to fit at least 3 cells for the
    // 27-stencil to be exact; fall back to fewer cells => stencil covers all.
    cell_edge[a] = len / ncell[a];
  }

  const std::size_t total_cells = static_cast<std::size_t>(ncell[0]) *
                                  static_cast<std::size_t>(ncell[1]) *
                                  static_cast<std::size_t>(ncell[2]);
  std::vector<std::vector<std::size_t>> cells(total_cells);
  auto cell_of = [&](const Vec3d& r) {
    int c[3];
    for (std::size_t a = 0; a < 3; ++a) {
      double x = r[a] - lo[a];
      if (box.periodic[a]) {
        const double len = hi[a] - lo[a];
        x -= std::floor(x / len) * len;
      }
      int idx = static_cast<int>(std::floor(x / cell_edge[a]));
      idx = std::clamp(idx, 0, ncell[a] - 1);
      c[a] = idx;
    }
    return (static_cast<std::size_t>(c[2]) * ncell[1] + c[1]) * ncell[0] + c[0];
  };
  for (std::size_t i = 0; i < n; ++i) cells[cell_of(positions[i])].push_back(i);

  offsets_.assign(n + 1, 0);
  indices_.clear();
  // First pass estimates: just append per atom in order (CSR built on the
  // fly; cheaper than counting twice for the system sizes we run).
  std::vector<std::size_t> scratch;
  scratch.reserve(128);

  for (std::size_t i = 0; i < n; ++i) {
    scratch.clear();
    int ci[3];
    {
      // Recompute the cell coordinates of atom i (cell_of folded them).
      const std::size_t flat = cell_of(positions[i]);
      ci[0] = static_cast<int>(flat % static_cast<std::size_t>(ncell[0]));
      ci[1] = static_cast<int>((flat / static_cast<std::size_t>(ncell[0])) %
                               static_cast<std::size_t>(ncell[1]));
      ci[2] = static_cast<int>(flat / (static_cast<std::size_t>(ncell[0]) *
                                       static_cast<std::size_t>(ncell[1])));
    }
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          int cc[3] = {ci[0] + dx, ci[1] + dy, ci[2] + dz};
          bool skip = false;
          for (std::size_t a = 0; a < 3; ++a) {
            if (box.periodic[a]) {
              cc[a] = (cc[a] + ncell[a]) % ncell[a];
            } else if (cc[a] < 0 || cc[a] >= ncell[a]) {
              skip = true;
              break;
            }
          }
          if (skip) continue;
          // With very few cells along a periodic axis, neighbors wrap onto
          // the same cell; dedup via the dx==... guard below is handled by
          // the distance check plus the self-exclusion.
          const std::size_t flat =
              (static_cast<std::size_t>(cc[2]) * ncell[1] + cc[1]) * ncell[0] +
              cc[0];
          for (std::size_t j : cells[flat]) {
            if (j == i) continue;
            const Vec3d d = box.minimum_image(positions[i], positions[j]);
            if (norm2(d) < rlist2) scratch.push_back(j);
          }
        }
      }
    }
    // Cells can repeat when a periodic axis has < 3 cells; dedup.
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    offsets_[i + 1] = offsets_[i] + scratch.size();
    indices_.insert(indices_.end(), scratch.begin(), scratch.end());
  }

  reference_positions_ = positions;
  ++rebuilds_;
}

bool NeighborList::ensure_current(const Box& box,
                                  const std::vector<Vec3d>& positions) {
  if (reference_positions_.size() != positions.size()) {
    build(box, positions);
    return true;
  }
  const double trigger = 0.5 * skin_;
  const double trigger2 = trigger * trigger;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3d d =
        box.minimum_image(reference_positions_[i], positions[i]);
    if (norm2(d) > trigger2) {
      build(box, positions);
      return true;
    }
  }
  return false;
}

}  // namespace wsmd::md
