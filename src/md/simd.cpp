/// \file simd.cpp
/// Tier dispatch plus the canonical scalar kernels.
///
/// This TU is compiled with `-ffp-contract=off` (see CMakeLists.txt): the
/// scalar kernels below are the bitwise specification the AVX2 TU must
/// match, so the compiler may not fuse the written mul/add sequences into
/// FMAs the vector code does not issue. Each kernel walks fixed-width lane
/// blocks, evaluates every lane with the same expression order the vector
/// path uses, zeroes remainder lanes, and reduces with the exact AVX2
/// horizontal-add tree (see simd.hpp).

#include "md/simd.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace wsmd::simd {

namespace {

// --- FP64 kernels (4-lane blocks, reduction tree (l0+l2)+(l1+l3)) --------

std::size_t sieve_f64_scalar(const double* px, const double* py,
                             const double* pz, double xi, double yi, double zi,
                             const std::uint32_t* idx, std::size_t count,
                             const BoxF64& box, double rc2,
                             std::uint32_t* out_idx, double* out_dx,
                             double* out_dy, double* out_dz, double* out_r2) {
  std::size_t out_n = 0;
  for (std::size_t m = 0; m < count; ++m) {
    const std::uint32_t j = idx[m];
    double dx = px[j] - xi;
    double dy = py[j] - yi;
    double dz = pz[j] - zi;
    dx -= std::nearbyint(dx * box.inv_len[0]) * box.len[0];
    dy -= std::nearbyint(dy * box.inv_len[1]) * box.len[1];
    dz -= std::nearbyint(dz * box.inv_len[2]) * box.len[2];
    const double r2 = dx * dx + dy * dy + dz * dz;
    // Branchless compaction: always store, advance only on accept — the
    // same store-then-count shape the vector compaction uses.
    out_idx[out_n] = j;
    out_dx[out_n] = dx;
    out_dy[out_n] = dy;
    out_dz[out_n] = dz;
    out_r2[out_n] = r2;
    out_n += (r2 < rc2) ? 1 : 0;
  }
  return out_n;
}

double rho_row_f64_scalar(const eam::ProfileF64::Raw& tab, const int* types,
                          const std::uint32_t* idx, const double* r2,
                          std::size_t n) {
  double acc = 0.0;
  const int nr = tab.nr;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF64) {
    double lane[kLanesF64];
    for (std::size_t l = 0; l < kLanesF64; ++l) {
      const std::size_t m = m0 + l;
      if (m >= n) {
        lane[l] = 0.0;
        continue;
      }
      const double t = r2[m] * tab.inv_dr2;
      int k = static_cast<int>(t);
      k = k < nr - 1 ? k : nr - 1;
      const double frac = t - static_cast<double>(k);
      const int tj = types[idx[m]];
      const double* c =
          tab.rho + static_cast<std::size_t>(tj * nr + k) * 2;
      lane[l] = c[0] + c[1] * frac;
    }
    acc += (lane[0] + lane[2]) + (lane[1] + lane[3]);
  }
  return acc;
}

PairAccumF64 force_row_f64_scalar(const eam::ProfileF64::Raw& tab,
                                  const int* types, const double* fprime,
                                  double fprime_i, int ti,
                                  const std::uint32_t* idx, const double* dx,
                                  const double* dy, const double* dz,
                                  const double* r2, std::size_t n,
                                  bool pairwise_only) {
  double afx = 0.0, afy = 0.0, afz = 0.0, aphi = 0.0;
  const int nr = tab.nr;
  const int nt = tab.nt;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF64) {
    double lfx[kLanesF64], lfy[kLanesF64], lfz[kLanesF64], lphi[kLanesF64];
    for (std::size_t l = 0; l < kLanesF64; ++l) {
      const std::size_t m = m0 + l;
      if (m >= n) {
        lfx[l] = lfy[l] = lfz[l] = lphi[l] = 0.0;
        continue;
      }
      const std::uint32_t j = idx[m];
      const double t = r2[m] * tab.inv_dr2;
      int k = static_cast<int>(t);
      k = k < nr - 1 ? k : nr - 1;
      const double frac = t - static_cast<double>(k);
      const int tj = types[j];
      const double* pc =
          tab.pair + static_cast<std::size_t>((ti * nt + tj) * nr + k) * 4;
      lphi[l] = pc[0] + pc[1] * frac;
      double pf = pc[2] + pc[3] * frac;
      if (!pairwise_only) {
        const double* cj =
            tab.rho_force + static_cast<std::size_t>(tj * nr + k) * 2;
        const double* ci =
            tab.rho_force + static_cast<std::size_t>(ti * nr + k) * 2;
        pf = pf + fprime_i * (cj[0] + cj[1] * frac);
        pf = pf + fprime[j] * (ci[0] + ci[1] * frac);
      }
      lfx[l] = dx[m] * pf;
      lfy[l] = dy[m] * pf;
      lfz[l] = dz[m] * pf;
    }
    afx += (lfx[0] + lfx[2]) + (lfx[1] + lfx[3]);
    afy += (lfy[0] + lfy[2]) + (lfy[1] + lfy[3]);
    afz += (lfz[0] + lfz[2]) + (lfz[1] + lfz[3]);
    aphi += (lphi[0] + lphi[2]) + (lphi[1] + lphi[3]);
  }
  return {afx, afy, afz, aphi};
}

// --- FP32 kernels (8-lane blocks, tree ((l0+l4)+(l2+l6))+((l1+l5)+(l3+l7)))

std::size_t sieve_f32_scalar(const float* px, const float* py, const float* pz,
                             float xi, float yi, float zi,
                             const std::uint32_t* idx, std::size_t count,
                             const BoxF32& box, float rc2,
                             std::uint32_t* out_idx, float* out_r2) {
  std::size_t out_n = 0;
  for (std::size_t m = 0; m < count; ++m) {
    const std::uint32_t j = idx[m];
    float dx = px[j] - xi;
    float dy = py[j] - yi;
    float dz = pz[j] - zi;
    dx -= std::nearbyint(dx * box.inv_len[0]) * box.len[0];
    dy -= std::nearbyint(dy * box.inv_len[1]) * box.len[1];
    dz -= std::nearbyint(dz * box.inv_len[2]) * box.len[2];
    const float r2 = dx * dx + dy * dy + dz * dz;
    out_idx[out_n] = j;
    out_r2[out_n] = r2;
    out_n += (r2 < rc2) ? 1 : 0;
  }
  return out_n;
}

float rho_row_f32_scalar(const eam::ProfileF32::Raw& tab, const int* types,
                         const std::uint32_t* idx, const float* r2,
                         std::size_t n) {
  float acc = 0.0f;
  const int nr = tab.nr;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF32) {
    float lane[kLanesF32];
    for (std::size_t l = 0; l < kLanesF32; ++l) {
      const std::size_t m = m0 + l;
      if (m >= n) {
        lane[l] = 0.0f;
        continue;
      }
      const float t = r2[m] * tab.inv_dr2;
      int k = static_cast<int>(t);
      k = k < nr - 1 ? k : nr - 1;
      const float frac = t - static_cast<float>(k);
      const int tj = types[idx[m]];
      const float* c = tab.rho + static_cast<std::size_t>(tj * nr + k) * 2;
      lane[l] = c[0] + c[1] * frac;
    }
    acc += ((lane[0] + lane[4]) + (lane[2] + lane[6])) +
           ((lane[1] + lane[5]) + (lane[3] + lane[7]));
  }
  return acc;
}

PairAccumF32 force_row_f32_scalar(const eam::ProfileF32::Raw& tab,
                                  const float* px, const float* py,
                                  const float* pz, float xi, float yi,
                                  float zi, const BoxF32& box,
                                  const int* types, const float* fprime,
                                  float fprime_i, int ti,
                                  const std::uint32_t* idx, std::size_t n,
                                  bool pairwise_only) {
  float afx = 0.0f, afy = 0.0f, afz = 0.0f, aphi = 0.0f;
  const int nr = tab.nr;
  const int nt = tab.nt;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF32) {
    float lfx[kLanesF32], lfy[kLanesF32], lfz[kLanesF32], lphi[kLanesF32];
    for (std::size_t l = 0; l < kLanesF32; ++l) {
      const std::size_t m = m0 + l;
      if (m >= n) {
        lfx[l] = lfy[l] = lfz[l] = lphi[l] = 0.0f;
        continue;
      }
      const std::uint32_t j = idx[m];
      // Recompute the displacement exactly as the sieve did.
      float dx = px[j] - xi;
      float dy = py[j] - yi;
      float dz = pz[j] - zi;
      dx -= std::nearbyint(dx * box.inv_len[0]) * box.len[0];
      dy -= std::nearbyint(dy * box.inv_len[1]) * box.len[1];
      dz -= std::nearbyint(dz * box.inv_len[2]) * box.len[2];
      const float r2 = dx * dx + dy * dy + dz * dz;
      const float t = r2 * tab.inv_dr2;
      int k = static_cast<int>(t);
      k = k < nr - 1 ? k : nr - 1;
      const float frac = t - static_cast<float>(k);
      const int tj = types[j];
      const float* pc =
          tab.pair + static_cast<std::size_t>((ti * nt + tj) * nr + k) * 4;
      lphi[l] = pc[0] + pc[1] * frac;
      float pf = pc[2] + pc[3] * frac;
      if (!pairwise_only) {
        const float* cj =
            tab.rho_force + static_cast<std::size_t>(tj * nr + k) * 2;
        const float* ci =
            tab.rho_force + static_cast<std::size_t>(ti * nr + k) * 2;
        pf = pf + fprime_i * (cj[0] + cj[1] * frac);
        pf = pf + fprime[j] * (ci[0] + ci[1] * frac);
      }
      lfx[l] = dx * pf;
      lfy[l] = dy * pf;
      lfz[l] = dz * pf;
    }
    afx += ((lfx[0] + lfx[4]) + (lfx[2] + lfx[6])) +
           ((lfx[1] + lfx[5]) + (lfx[3] + lfx[7]));
    afy += ((lfy[0] + lfy[4]) + (lfy[2] + lfy[6])) +
           ((lfy[1] + lfy[5]) + (lfy[3] + lfy[7]));
    afz += ((lfz[0] + lfz[4]) + (lfz[2] + lfz[6])) +
           ((lfz[1] + lfz[5]) + (lfz[3] + lfz[7]));
    aphi += ((lphi[0] + lphi[4]) + (lphi[2] + lphi[6])) +
            ((lphi[1] + lphi[5]) + (lphi[3] + lphi[7]));
  }
  return {afx, afy, afz, aphi};
}

const KernelTable kScalarTable = {
    sieve_f64_scalar, rho_row_f64_scalar, force_row_f64_scalar,
    sieve_f32_scalar, rho_row_f32_scalar, force_row_f32_scalar,
};

// --- Dispatch -------------------------------------------------------------

bool cpu_supports(Tier t) {
  if (t == Tier::kScalar) return true;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Tier resolve_default_tier() {
  Tier t = runtime_tier();
  if (const char* env = std::getenv("WSMD_SIMD_TIER")) {
    const std::string s(env);
    if (s == "scalar") {
      t = Tier::kScalar;
    } else if (s == "avx2") {
      WSMD_REQUIRE(tier_supported(Tier::kAvx2),
                   "WSMD_SIMD_TIER=avx2 but avx2 is "
                       << (compiled_tier() == Tier::kAvx2 ? "unsupported by this CPU"
                                                          : "not compiled in"));
      t = Tier::kAvx2;
    } else {
      WSMD_REQUIRE(false, "unknown WSMD_SIMD_TIER '" << s
                                                     << "' (want scalar|avx2)");
    }
  }
  return t;
}

// Overrides are rare (tests/bench) and single-threaded by contract; the
// default is resolved once and cached.
bool g_has_override = false;
Tier g_override = Tier::kScalar;

}  // namespace

const char* tier_name(Tier t) {
  return t == Tier::kAvx2 ? "avx2" : "scalar";
}

Tier compiled_tier() {
  return detail::avx2_table() != nullptr ? Tier::kAvx2 : Tier::kScalar;
}

bool tier_supported(Tier t) {
  if (t == Tier::kScalar) return true;
  return compiled_tier() == Tier::kAvx2 && cpu_supports(t);
}

Tier runtime_tier() {
  return tier_supported(Tier::kAvx2) ? Tier::kAvx2 : Tier::kScalar;
}

Tier active_tier() {
  if (g_has_override) return g_override;
  static const Tier resolved = resolve_default_tier();
  return resolved;
}

void set_tier_override(Tier t) {
  WSMD_REQUIRE(tier_supported(t),
               "cannot force simd tier '" << tier_name(t)
                                          << "': unsupported on this host");
  g_has_override = true;
  g_override = t;
}

void clear_tier_override() { g_has_override = false; }

const KernelTable& kernels_for(Tier t) {
  if (t == Tier::kAvx2) {
    const KernelTable* table = detail::avx2_table();
    WSMD_REQUIRE(table != nullptr && tier_supported(Tier::kAvx2),
                 "avx2 kernels requested but unavailable");
    return *table;
  }
  return kScalarTable;
}

const KernelTable& kernels() { return kernels_for(active_tier()); }

}  // namespace wsmd::simd
