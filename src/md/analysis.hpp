#pragma once

/// \file analysis.hpp
/// Structural analysis: centrosymmetry parameter and coordination number.
///
/// The paper's Fig. 2 renders grain-boundary atoms (white) against the two
/// crystal orientations: atoms whose local environment deviates from the
/// perfect lattice. The standard detector is the centrosymmetry parameter
/// (Kelchner et al., PRB 58, 11085 (1998)):
///
///     CSP_i = sum_{k=1}^{N/2} | r_k + r_{k+N/2} |^2
///
/// over the N nearest neighbors paired into most-nearly-opposite bonds.
/// Perfect centrosymmetric lattices (FCC N=12, BCC N=8) give CSP ~ 0;
/// boundaries, surfaces, and defects give large values.

#include <vector>

#include "util/box.hpp"
#include "util/vec3.hpp"

namespace wsmd::md {

struct StructureAnalysis {
  std::vector<double> centrosymmetry;  ///< per atom (A^2)
  std::vector<int> coordination;       ///< neighbors within rcut
};

/// Compute CSP (with `pairs*2` nearest neighbors: 12 for FCC, 8 for BCC)
/// and coordination within `rcut` for every atom.
StructureAnalysis analyze_structure(const Box& box,
                                    const std::vector<Vec3d>& positions,
                                    double rcut, int neighbor_count);

/// Classify defective atoms: CSP above `threshold` (A^2). For metals a
/// threshold of ~0.5-1.0 A^2 separates thermal noise from boundaries.
std::vector<bool> defective_atoms(const StructureAnalysis& analysis,
                                  double threshold);

}  // namespace wsmd::md
