/// \file simd_avx2.cpp
/// AVX2 implementations of the batched kernels (simd.hpp).
///
/// Compiled into every build; the vector bodies are gated on
/// WSMD_SIMD_ENABLED (the WSMD_SIMD CMake option) and x86-64, with
/// per-function `target("avx2")` attributes so the rest of the binary stays
/// baseline and the scalar fallback runs on any CPU. Like simd.cpp this TU
/// is built with `-ffp-contract=off`; every arithmetic sequence here
/// mirrors the scalar kernels op for op (same mul/add order, same
/// round-half-even rounding, same reduction tree), which is what makes the
/// two tiers bitwise interchangeable.
///
/// Remainder policy: tails use masked loads/gathers (masked-off lanes never
/// touch memory) and contribute exact zeros to the block sums. The sieves
/// compact accepted lanes with a movemask-indexed permutation table and a
/// full-width store — hence the `count + kPad*` capacity contract on the
/// output arrays.

#include "md/simd.hpp"

#if defined(WSMD_SIMD_ENABLED) && defined(__x86_64__)

#include <immintrin.h>

namespace wsmd::simd {
namespace {

#define WSMD_AVX2 __attribute__((target("avx2")))

// Sliding tail mask: load at (8 - valid) to get `valid` leading -1 lanes.
alignas(32) constexpr std::int32_t kTailMask[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};

// Movemask-indexed compaction tables: for accept-mask m, lane permutations
// that pack accepted lanes to the front in input order.
struct PackTables {
  alignas(32) std::int32_t perm8[256][8];  // 8 x 32-bit lanes
  alignas(32) std::int32_t perm4[16][8];   // 4 x 64-bit lanes as i32 pairs
  alignas(16) std::int8_t shuf4[16][16];   // 4 x u32 in xmm, byte shuffle
};

const PackTables kPack = [] {
  PackTables t{};
  for (int m = 0; m < 256; ++m) {
    int out = 0;
    for (int l = 0; l < 8; ++l) {
      if (m & (1 << l)) t.perm8[m][out++] = l;
    }
  }
  for (int m = 0; m < 16; ++m) {
    int out = 0;
    for (int l = 0; l < 4; ++l) {
      if (!(m & (1 << l))) continue;
      t.perm4[m][2 * out] = 2 * l;
      t.perm4[m][2 * out + 1] = 2 * l + 1;
      for (int b = 0; b < 4; ++b) {
        t.shuf4[m][4 * out + b] = static_cast<std::int8_t>(4 * l + b);
      }
      ++out;
    }
  }
  return t;
}();

constexpr int kRoundEven = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

// Horizontal sums matching the scalar reduction trees exactly.
WSMD_AVX2 inline double hsum4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);  // [l0+l2, l1+l3]
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

WSMD_AVX2 inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 s = _mm_add_ps(lo, hi);  // [l0+l4, l1+l5, l2+l6, l3+l7]
  const __m128 s2 = _mm_add_ps(s, _mm_movehl_ps(s, s));
  return _mm_cvtss_f32(
      _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x55)));
}

WSMD_AVX2 inline __m128i tail_mask4(std::size_t valid) {
  return _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(kTailMask + (8 - valid)));
}

WSMD_AVX2 inline __m256i tail_mask8(std::size_t valid) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTailMask + (8 - valid)));
}

// --- FP64 -----------------------------------------------------------------

WSMD_AVX2 std::size_t sieve_f64_avx2(const double* px, const double* py,
                                     const double* pz, double xi, double yi,
                                     double zi, const std::uint32_t* idx,
                                     std::size_t count, const BoxF64& box,
                                     double rc2, std::uint32_t* out_idx,
                                     double* out_dx, double* out_dy,
                                     double* out_dz, double* out_r2) {
  const __m256d vxi = _mm256_set1_pd(xi);
  const __m256d vyi = _mm256_set1_pd(yi);
  const __m256d vzi = _mm256_set1_pd(zi);
  const __m256d vl0 = _mm256_set1_pd(box.len[0]);
  const __m256d vl1 = _mm256_set1_pd(box.len[1]);
  const __m256d vl2 = _mm256_set1_pd(box.len[2]);
  const __m256d vi0 = _mm256_set1_pd(box.inv_len[0]);
  const __m256d vi1 = _mm256_set1_pd(box.inv_len[1]);
  const __m256d vi2 = _mm256_set1_pd(box.inv_len[2]);
  const __m256d vrc2 = _mm256_set1_pd(rc2);
  const __m256d zero = _mm256_setzero_pd();
  std::size_t out_n = 0;
  for (std::size_t m0 = 0; m0 < count; m0 += kLanesF64) {
    const std::size_t valid =
        count - m0 < kLanesF64 ? count - m0 : kLanesF64;
    const __m128i m32 = tail_mask4(valid);
    const __m128i vj =
        _mm_maskload_epi32(reinterpret_cast<const int*>(idx + m0), m32);
    const __m256d mpd = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(m32));
    __m256d dx =
        _mm256_sub_pd(_mm256_mask_i32gather_pd(zero, px, vj, mpd, 8), vxi);
    __m256d dy =
        _mm256_sub_pd(_mm256_mask_i32gather_pd(zero, py, vj, mpd, 8), vyi);
    __m256d dz =
        _mm256_sub_pd(_mm256_mask_i32gather_pd(zero, pz, vj, mpd, 8), vzi);
    dx = _mm256_sub_pd(
        dx, _mm256_mul_pd(
                _mm256_round_pd(_mm256_mul_pd(dx, vi0), kRoundEven), vl0));
    dy = _mm256_sub_pd(
        dy, _mm256_mul_pd(
                _mm256_round_pd(_mm256_mul_pd(dy, vi1), kRoundEven), vl1));
    dz = _mm256_sub_pd(
        dz, _mm256_mul_pd(
                _mm256_round_pd(_mm256_mul_pd(dz, vi2), kRoundEven), vl2));
    const __m256d r2 = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
        _mm256_mul_pd(dz, dz));
    const __m256d accept =
        _mm256_and_pd(_mm256_cmp_pd(r2, vrc2, _CMP_LT_OQ), mpd);
    const int mask = _mm256_movemask_pd(accept);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPack.perm4[mask]));
    _mm256_storeu_pd(out_dx + out_n,
                     _mm256_castps_pd(_mm256_permutevar8x32_ps(
                         _mm256_castpd_ps(dx), perm)));
    _mm256_storeu_pd(out_dy + out_n,
                     _mm256_castps_pd(_mm256_permutevar8x32_ps(
                         _mm256_castpd_ps(dy), perm)));
    _mm256_storeu_pd(out_dz + out_n,
                     _mm256_castps_pd(_mm256_permutevar8x32_ps(
                         _mm256_castpd_ps(dz), perm)));
    _mm256_storeu_pd(out_r2 + out_n,
                     _mm256_castps_pd(_mm256_permutevar8x32_ps(
                         _mm256_castpd_ps(r2), perm)));
    const __m128i sh = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kPack.shuf4[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out_idx + out_n),
                     _mm_shuffle_epi8(vj, sh));
    out_n += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  return out_n;
}

WSMD_AVX2 double rho_row_f64_avx2(const eam::ProfileF64::Raw& tab,
                                  const int* types, const std::uint32_t* idx,
                                  const double* r2, std::size_t n) {
  const __m256d vinv = _mm256_set1_pd(tab.inv_dr2);
  const __m128i vnr = _mm_set1_epi32(tab.nr);
  const __m128i vnr1 = _mm_set1_epi32(tab.nr - 1);
  const __m256d zero = _mm256_setzero_pd();
  const __m128i zero32 = _mm_setzero_si128();
  double acc = 0.0;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF64) {
    const std::size_t valid = n - m0 < kLanesF64 ? n - m0 : kLanesF64;
    const __m128i m32 = tail_mask4(valid);
    const __m256i m64 = _mm256_cvtepi32_epi64(m32);
    const __m256d mpd = _mm256_castsi256_pd(m64);
    const __m128i vj =
        _mm_maskload_epi32(reinterpret_cast<const int*>(idx + m0), m32);
    const __m256d vr2 = _mm256_maskload_pd(r2 + m0, m64);
    const __m256d vt = _mm256_mul_pd(vr2, vinv);
    const __m128i vk = _mm_min_epi32(_mm256_cvttpd_epi32(vt), vnr1);
    const __m256d vfrac = _mm256_sub_pd(vt, _mm256_cvtepi32_pd(vk));
    const __m128i vtj = _mm_mask_i32gather_epi32(zero32, types, vj, m32, 4);
    const __m128i vb2 = _mm_slli_epi32(
        _mm_add_epi32(_mm_mullo_epi32(vtj, vnr), vk), 1);
    const __m256d c0 = _mm256_mask_i32gather_pd(zero, tab.rho, vb2, mpd, 8);
    const __m256d c1 =
        _mm256_mask_i32gather_pd(zero, tab.rho + 1, vb2, mpd, 8);
    acc += hsum4(_mm256_add_pd(c0, _mm256_mul_pd(c1, vfrac)));
  }
  return acc;
}

WSMD_AVX2 PairAccumF64 force_row_f64_avx2(
    const eam::ProfileF64::Raw& tab, const int* types, const double* fprime,
    double fprime_i, int ti, const std::uint32_t* idx, const double* dx,
    const double* dy, const double* dz, const double* r2, std::size_t n,
    bool pairwise_only) {
  const __m256d vinv = _mm256_set1_pd(tab.inv_dr2);
  const __m128i vnr = _mm_set1_epi32(tab.nr);
  const __m128i vnr1 = _mm_set1_epi32(tab.nr - 1);
  const __m128i vrow_i = _mm_set1_epi32(ti * tab.nt);
  const __m128i vbase_i = _mm_set1_epi32(ti * tab.nr);
  const __m256d vfp_i = _mm256_set1_pd(fprime_i);
  const __m256d zero = _mm256_setzero_pd();
  const __m128i zero32 = _mm_setzero_si128();
  double afx = 0.0, afy = 0.0, afz = 0.0, aphi = 0.0;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF64) {
    const std::size_t valid = n - m0 < kLanesF64 ? n - m0 : kLanesF64;
    const __m128i m32 = tail_mask4(valid);
    const __m256i m64 = _mm256_cvtepi32_epi64(m32);
    const __m256d mpd = _mm256_castsi256_pd(m64);
    const __m128i vj =
        _mm_maskload_epi32(reinterpret_cast<const int*>(idx + m0), m32);
    const __m256d vr2 = _mm256_maskload_pd(r2 + m0, m64);
    const __m256d vt = _mm256_mul_pd(vr2, vinv);
    const __m128i vk = _mm_min_epi32(_mm256_cvttpd_epi32(vt), vnr1);
    const __m256d vfrac = _mm256_sub_pd(vt, _mm256_cvtepi32_pd(vk));
    const __m128i vtj = _mm_mask_i32gather_epi32(zero32, types, vj, m32, 4);
    const __m128i vb4 = _mm_slli_epi32(
        _mm_add_epi32(
            _mm_mullo_epi32(_mm_add_epi32(vrow_i, vtj), vnr), vk),
        2);
    const __m256d pc0 =
        _mm256_mask_i32gather_pd(zero, tab.pair, vb4, mpd, 8);
    const __m256d pc1 =
        _mm256_mask_i32gather_pd(zero, tab.pair + 1, vb4, mpd, 8);
    const __m256d pc2 =
        _mm256_mask_i32gather_pd(zero, tab.pair + 2, vb4, mpd, 8);
    const __m256d pc3 =
        _mm256_mask_i32gather_pd(zero, tab.pair + 3, vb4, mpd, 8);
    const __m256d vphi = _mm256_add_pd(pc0, _mm256_mul_pd(pc1, vfrac));
    __m256d pf = _mm256_add_pd(pc2, _mm256_mul_pd(pc3, vfrac));
    if (!pairwise_only) {
      const __m128i vbj2 = _mm_slli_epi32(
          _mm_add_epi32(_mm_mullo_epi32(vtj, vnr), vk), 1);
      const __m128i vbi2 =
          _mm_slli_epi32(_mm_add_epi32(vbase_i, vk), 1);
      const __m256d dj0 =
          _mm256_mask_i32gather_pd(zero, tab.rho_force, vbj2, mpd, 8);
      const __m256d dj1 =
          _mm256_mask_i32gather_pd(zero, tab.rho_force + 1, vbj2, mpd, 8);
      const __m256d di0 =
          _mm256_mask_i32gather_pd(zero, tab.rho_force, vbi2, mpd, 8);
      const __m256d di1 =
          _mm256_mask_i32gather_pd(zero, tab.rho_force + 1, vbi2, mpd, 8);
      const __m256d vfpj =
          _mm256_mask_i32gather_pd(zero, fprime, vj, mpd, 8);
      pf = _mm256_add_pd(
          pf, _mm256_mul_pd(vfp_i,
                            _mm256_add_pd(dj0, _mm256_mul_pd(dj1, vfrac))));
      pf = _mm256_add_pd(
          pf, _mm256_mul_pd(vfpj,
                            _mm256_add_pd(di0, _mm256_mul_pd(di1, vfrac))));
    }
    const __m256d vdx = _mm256_maskload_pd(dx + m0, m64);
    const __m256d vdy = _mm256_maskload_pd(dy + m0, m64);
    const __m256d vdz = _mm256_maskload_pd(dz + m0, m64);
    afx += hsum4(_mm256_mul_pd(vdx, pf));
    afy += hsum4(_mm256_mul_pd(vdy, pf));
    afz += hsum4(_mm256_mul_pd(vdz, pf));
    aphi += hsum4(vphi);
  }
  return {afx, afy, afz, aphi};
}

// --- FP32 -----------------------------------------------------------------

WSMD_AVX2 std::size_t sieve_f32_avx2(const float* px, const float* py,
                                     const float* pz, float xi, float yi,
                                     float zi, const std::uint32_t* idx,
                                     std::size_t count, const BoxF32& box,
                                     float rc2, std::uint32_t* out_idx,
                                     float* out_r2) {
  const __m256 vxi = _mm256_set1_ps(xi);
  const __m256 vyi = _mm256_set1_ps(yi);
  const __m256 vzi = _mm256_set1_ps(zi);
  const __m256 vl0 = _mm256_set1_ps(box.len[0]);
  const __m256 vl1 = _mm256_set1_ps(box.len[1]);
  const __m256 vl2 = _mm256_set1_ps(box.len[2]);
  const __m256 vi0 = _mm256_set1_ps(box.inv_len[0]);
  const __m256 vi1 = _mm256_set1_ps(box.inv_len[1]);
  const __m256 vi2 = _mm256_set1_ps(box.inv_len[2]);
  const __m256 vrc2 = _mm256_set1_ps(rc2);
  const __m256 zero = _mm256_setzero_ps();
  std::size_t out_n = 0;
  for (std::size_t m0 = 0; m0 < count; m0 += kLanesF32) {
    const std::size_t valid =
        count - m0 < kLanesF32 ? count - m0 : kLanesF32;
    const __m256i m32 = tail_mask8(valid);
    const __m256 mps = _mm256_castsi256_ps(m32);
    const __m256i vj =
        _mm256_maskload_epi32(reinterpret_cast<const int*>(idx + m0), m32);
    __m256 dx =
        _mm256_sub_ps(_mm256_mask_i32gather_ps(zero, px, vj, mps, 4), vxi);
    __m256 dy =
        _mm256_sub_ps(_mm256_mask_i32gather_ps(zero, py, vj, mps, 4), vyi);
    __m256 dz =
        _mm256_sub_ps(_mm256_mask_i32gather_ps(zero, pz, vj, mps, 4), vzi);
    dx = _mm256_sub_ps(
        dx, _mm256_mul_ps(
                _mm256_round_ps(_mm256_mul_ps(dx, vi0), kRoundEven), vl0));
    dy = _mm256_sub_ps(
        dy, _mm256_mul_ps(
                _mm256_round_ps(_mm256_mul_ps(dy, vi1), kRoundEven), vl1));
    dz = _mm256_sub_ps(
        dz, _mm256_mul_ps(
                _mm256_round_ps(_mm256_mul_ps(dz, vi2), kRoundEven), vl2));
    const __m256 r2 = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
        _mm256_mul_ps(dz, dz));
    const __m256 accept =
        _mm256_and_ps(_mm256_cmp_ps(r2, vrc2, _CMP_LT_OQ), mps);
    const int mask = _mm256_movemask_ps(accept);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPack.perm8[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out_idx + out_n),
                        _mm256_permutevar8x32_epi32(vj, perm));
    _mm256_storeu_ps(out_r2 + out_n, _mm256_permutevar8x32_ps(r2, perm));
    out_n += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  return out_n;
}

WSMD_AVX2 float rho_row_f32_avx2(const eam::ProfileF32::Raw& tab,
                                 const int* types, const std::uint32_t* idx,
                                 const float* r2, std::size_t n) {
  const __m256 vinv = _mm256_set1_ps(tab.inv_dr2);
  const __m256i vnr = _mm256_set1_epi32(tab.nr);
  const __m256i vnr1 = _mm256_set1_epi32(tab.nr - 1);
  const __m256 zero = _mm256_setzero_ps();
  const __m256i zero32 = _mm256_setzero_si256();
  float acc = 0.0f;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF32) {
    const std::size_t valid = n - m0 < kLanesF32 ? n - m0 : kLanesF32;
    const __m256i m32 = tail_mask8(valid);
    const __m256 mps = _mm256_castsi256_ps(m32);
    const __m256i vj =
        _mm256_maskload_epi32(reinterpret_cast<const int*>(idx + m0), m32);
    const __m256 vr2 = _mm256_maskload_ps(r2 + m0, m32);
    const __m256 vt = _mm256_mul_ps(vr2, vinv);
    const __m256i vk = _mm256_min_epi32(_mm256_cvttps_epi32(vt), vnr1);
    const __m256 vfrac = _mm256_sub_ps(vt, _mm256_cvtepi32_ps(vk));
    const __m256i vtj =
        _mm256_mask_i32gather_epi32(zero32, types, vj, m32, 4);
    const __m256i vb2 = _mm256_slli_epi32(
        _mm256_add_epi32(_mm256_mullo_epi32(vtj, vnr), vk), 1);
    const __m256 c0 = _mm256_mask_i32gather_ps(zero, tab.rho, vb2, mps, 4);
    const __m256 c1 =
        _mm256_mask_i32gather_ps(zero, tab.rho + 1, vb2, mps, 4);
    acc += hsum8(_mm256_add_ps(c0, _mm256_mul_ps(c1, vfrac)));
  }
  return acc;
}

WSMD_AVX2 PairAccumF32 force_row_f32_avx2(
    const eam::ProfileF32::Raw& tab, const float* px, const float* py,
    const float* pz, float xi, float yi, float zi, const BoxF32& box,
    const int* types, const float* fprime, float fprime_i, int ti,
    const std::uint32_t* idx, std::size_t n, bool pairwise_only) {
  const __m256 vxi = _mm256_set1_ps(xi);
  const __m256 vyi = _mm256_set1_ps(yi);
  const __m256 vzi = _mm256_set1_ps(zi);
  const __m256 vl0 = _mm256_set1_ps(box.len[0]);
  const __m256 vl1 = _mm256_set1_ps(box.len[1]);
  const __m256 vl2 = _mm256_set1_ps(box.len[2]);
  const __m256 vi0 = _mm256_set1_ps(box.inv_len[0]);
  const __m256 vi1 = _mm256_set1_ps(box.inv_len[1]);
  const __m256 vi2 = _mm256_set1_ps(box.inv_len[2]);
  const __m256 vinv = _mm256_set1_ps(tab.inv_dr2);
  const __m256i vnr = _mm256_set1_epi32(tab.nr);
  const __m256i vnr1 = _mm256_set1_epi32(tab.nr - 1);
  const __m256i vrow_i = _mm256_set1_epi32(ti * tab.nt);
  const __m256i vbase_i = _mm256_set1_epi32(ti * tab.nr);
  const __m256 vfp_i = _mm256_set1_ps(fprime_i);
  const __m256 zero = _mm256_setzero_ps();
  const __m256i zero32 = _mm256_setzero_si256();
  float afx = 0.0f, afy = 0.0f, afz = 0.0f, aphi = 0.0f;
  for (std::size_t m0 = 0; m0 < n; m0 += kLanesF32) {
    const std::size_t valid = n - m0 < kLanesF32 ? n - m0 : kLanesF32;
    const __m256i m32 = tail_mask8(valid);
    const __m256 mps = _mm256_castsi256_ps(m32);
    const __m256i vj =
        _mm256_maskload_epi32(reinterpret_cast<const int*>(idx + m0), m32);
    __m256 dx =
        _mm256_sub_ps(_mm256_mask_i32gather_ps(zero, px, vj, mps, 4), vxi);
    __m256 dy =
        _mm256_sub_ps(_mm256_mask_i32gather_ps(zero, py, vj, mps, 4), vyi);
    __m256 dz =
        _mm256_sub_ps(_mm256_mask_i32gather_ps(zero, pz, vj, mps, 4), vzi);
    dx = _mm256_sub_ps(
        dx, _mm256_mul_ps(
                _mm256_round_ps(_mm256_mul_ps(dx, vi0), kRoundEven), vl0));
    dy = _mm256_sub_ps(
        dy, _mm256_mul_ps(
                _mm256_round_ps(_mm256_mul_ps(dy, vi1), kRoundEven), vl1));
    dz = _mm256_sub_ps(
        dz, _mm256_mul_ps(
                _mm256_round_ps(_mm256_mul_ps(dz, vi2), kRoundEven), vl2));
    const __m256 r2 = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(dx, dx), _mm256_mul_ps(dy, dy)),
        _mm256_mul_ps(dz, dz));
    const __m256 vt = _mm256_mul_ps(r2, vinv);
    const __m256i vk = _mm256_min_epi32(_mm256_cvttps_epi32(vt), vnr1);
    const __m256 vfrac = _mm256_sub_ps(vt, _mm256_cvtepi32_ps(vk));
    const __m256i vtj =
        _mm256_mask_i32gather_epi32(zero32, types, vj, m32, 4);
    const __m256i vb4 = _mm256_slli_epi32(
        _mm256_add_epi32(
            _mm256_mullo_epi32(_mm256_add_epi32(vrow_i, vtj), vnr), vk),
        2);
    const __m256 pc0 = _mm256_mask_i32gather_ps(zero, tab.pair, vb4, mps, 4);
    const __m256 pc1 =
        _mm256_mask_i32gather_ps(zero, tab.pair + 1, vb4, mps, 4);
    const __m256 pc2 =
        _mm256_mask_i32gather_ps(zero, tab.pair + 2, vb4, mps, 4);
    const __m256 pc3 =
        _mm256_mask_i32gather_ps(zero, tab.pair + 3, vb4, mps, 4);
    const __m256 vphi = _mm256_add_ps(pc0, _mm256_mul_ps(pc1, vfrac));
    __m256 pf = _mm256_add_ps(pc2, _mm256_mul_ps(pc3, vfrac));
    if (!pairwise_only) {
      const __m256i vbj2 = _mm256_slli_epi32(
          _mm256_add_epi32(_mm256_mullo_epi32(vtj, vnr), vk), 1);
      const __m256i vbi2 =
          _mm256_slli_epi32(_mm256_add_epi32(vbase_i, vk), 1);
      const __m256 dj0 =
          _mm256_mask_i32gather_ps(zero, tab.rho_force, vbj2, mps, 4);
      const __m256 dj1 =
          _mm256_mask_i32gather_ps(zero, tab.rho_force + 1, vbj2, mps, 4);
      const __m256 di0 =
          _mm256_mask_i32gather_ps(zero, tab.rho_force, vbi2, mps, 4);
      const __m256 di1 =
          _mm256_mask_i32gather_ps(zero, tab.rho_force + 1, vbi2, mps, 4);
      const __m256 vfpj =
          _mm256_mask_i32gather_ps(zero, fprime, vj, mps, 4);
      pf = _mm256_add_ps(
          pf, _mm256_mul_ps(vfp_i,
                            _mm256_add_ps(dj0, _mm256_mul_ps(dj1, vfrac))));
      pf = _mm256_add_ps(
          pf, _mm256_mul_ps(vfpj,
                            _mm256_add_ps(di0, _mm256_mul_ps(di1, vfrac))));
    }
    // Invalid lanes carry junk dx (their position gather was masked); AND
    // with the lane mask forces their products to +0.0, matching the
    // scalar remainder policy bit for bit.
    afx += hsum8(_mm256_and_ps(_mm256_mul_ps(dx, pf), mps));
    afy += hsum8(_mm256_and_ps(_mm256_mul_ps(dy, pf), mps));
    afz += hsum8(_mm256_and_ps(_mm256_mul_ps(dz, pf), mps));
    aphi += hsum8(vphi);
  }
  return {afx, afy, afz, aphi};
}

#undef WSMD_AVX2

const KernelTable kAvx2Table = {
    sieve_f64_avx2, rho_row_f64_avx2, force_row_f64_avx2,
    sieve_f32_avx2, rho_row_f32_avx2, force_row_f32_avx2,
};

}  // namespace

namespace detail {
const KernelTable* avx2_table() { return &kAvx2Table; }
}  // namespace detail

}  // namespace wsmd::simd

#else  // scalar-only build (WSMD_SIMD=OFF or non-x86)

namespace wsmd::simd::detail {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace wsmd::simd::detail

#endif
