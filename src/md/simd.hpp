#pragma once

/// \file simd.hpp
/// Runtime-dispatched batched force kernels: the SoA hot path shared by the
/// FP64 reference engine (md/force_eam.cpp) and the FP32 wafer phase
/// kernels (core/wse_md.cpp).
///
/// One binary runs everywhere: every kernel exists in a canonical scalar
/// form (simd.cpp) and, when the build enables it (WSMD_SIMD=ON on x86-64),
/// an AVX2 form (simd_avx2.cpp) selected at runtime via
/// `__builtin_cpu_supports`. The two tiers are **bitwise identical by
/// construction**, not merely close:
///
///  * the scalar kernels process the same fixed-width lane blocks (4 FP64 /
///    8 FP32) with the same per-lane expression order, compiled with
///    `-ffp-contract=off` so no FMA contraction diverges from the explicit
///    mul/add sequence the vector code issues;
///  * block sums use the exact tree the AVX2 horizontal reduction performs
///    — FP64: (l0+l2)+(l1+l3); FP32: ((l0+l4)+(l2+l6))+((l1+l5)+(l3+l7)) —
///    and blocks accumulate in ascending order;
///  * remainder lanes contribute +0.0 (masked loads/gathers never touch
///    memory past the row, and +0.0 is an exact identity in both tiers);
///  * minimum image is `d -= nearbyint(d * inv_len) * len` with inv_len = 0
///    on open axes (round-half-even in both `std::nearbyint` and
///    `_mm256_round_*(..., _MM_FROUND_TO_NEAREST_INT)`).
///
/// Because of this, the scalar fallback, the AVX2 path, and a
/// `-DWSMD_SIMD=OFF` build all reproduce the recorded goldens byte-for-byte
/// — CI pins that with kernel-parity tests and a scalar matrix leg.
///
/// Capacity contract: the sieve kernels compact accepted pairs with
/// full-width vector stores, so every output array must have room for
/// `count + kPad*` entries; entries past the returned count are garbage.

#include <cstddef>
#include <cstdint>

#include "eam/profile.hpp"

namespace wsmd::simd {

/// Dispatch tiers, ordered: higher value = wider path.
enum class Tier : int { kScalar = 0, kAvx2 = 1 };

const char* tier_name(Tier t);

/// Highest tier compiled into this binary (kAvx2 iff WSMD_SIMD was ON and
/// the target is x86-64).
Tier compiled_tier();

/// True when `t` is both compiled in and supported by the running CPU.
bool tier_supported(Tier t);

/// Best supported tier, before any override.
Tier runtime_tier();

/// The tier kernels() dispatches to: an explicit override if set, else the
/// WSMD_SIMD_TIER env var ("scalar" | "avx2", read once), else
/// runtime_tier().
Tier active_tier();

/// Force a tier (tests, benchmarks). Requires tier_supported(t).
void set_tier_override(Tier t);
void clear_tier_override();

/// Lane widths and the sieve-output padding each precision requires.
inline constexpr std::size_t kLanesF64 = 4;
inline constexpr std::size_t kLanesF32 = 8;
inline constexpr std::size_t kPadF64 = kLanesF64;
inline constexpr std::size_t kPadF32 = kLanesF32;

/// Box geometry for the branch-free minimum image: inv_len must be 0 on
/// non-periodic axes (the correction term then vanishes exactly).
struct BoxF64 {
  double len[3];
  double inv_len[3];
};
struct BoxF32 {
  float len[3];
  float inv_len[3];
};

/// Per-row force-pass result: accumulated force on atom i and the summed
/// pair energy phi over the row (caller applies the half-counting factor).
struct PairAccumF64 {
  double fx, fy, fz, phi;
};
struct PairAccumF32 {
  float fx, fy, fz, phi;
};

/// One tier's kernel set. All row kernels assume the caller already built
/// the accepted-pair row with the matching sieve (same tier — the dispatch
/// never mixes tiers inside one force evaluation).
struct KernelTable {
  /// FP64 distance sieve over one neighbor row: for each candidate j in
  /// idx[0..count), compute the minimum-image displacement d = p[j] - p_i
  /// and keep pairs with |d|² < rc2. Accepted entries are compacted in
  /// input order into out_idx/out_dx/out_dy/out_dz/out_r2 (capacity
  /// >= count + kPadF64 each). Returns the accepted count.
  std::size_t (*sieve_f64)(const double* px, const double* py,
                           const double* pz, double xi, double yi, double zi,
                           const std::uint32_t* idx, std::size_t count,
                           const BoxF64& box, double rc2,
                           std::uint32_t* out_idx, double* out_dx,
                           double* out_dy, double* out_dz, double* out_r2);

  /// FP64 density pass over an accepted row: sum rho(type_j, r2) lookups.
  double (*rho_row_f64)(const eam::ProfileF64::Raw& tab, const int* types,
                        const std::uint32_t* idx, const double* r2,
                        std::size_t n);

  /// FP64 force pass over an accepted row: pair + embedding forces from
  /// the stored displacements. `pairwise_only` skips the embedding terms
  /// (LJ-style tables).
  PairAccumF64 (*force_row_f64)(const eam::ProfileF64::Raw& tab,
                                const int* types, const double* fprime,
                                double fprime_i, int ti,
                                const std::uint32_t* idx, const double* dx,
                                const double* dy, const double* dz,
                                const double* r2, std::size_t n,
                                bool pairwise_only);

  /// FP32 distance sieve: gathers candidate positions by index (the wafer
  /// path stores only indices — at 800k atoms the per-neighbor
  /// displacement cache the FP64 path keeps would not fit). out_idx and
  /// out_r2 need capacity >= count + kPadF32.
  std::size_t (*sieve_f32)(const float* px, const float* py, const float* pz,
                           float xi, float yi, float zi,
                           const std::uint32_t* idx, std::size_t count,
                           const BoxF32& box, float rc2,
                           std::uint32_t* out_idx, float* out_r2);

  /// FP32 density pass over an accepted row.
  float (*rho_row_f32)(const eam::ProfileF32::Raw& tab, const int* types,
                       const std::uint32_t* idx, const float* r2,
                       std::size_t n);

  /// FP32 force pass: re-gathers positions and recomputes the displacement
  /// with the exact sieve expressions (bitwise the same r2).
  PairAccumF32 (*force_row_f32)(const eam::ProfileF32::Raw& tab,
                                const float* px, const float* py,
                                const float* pz, float xi, float yi, float zi,
                                const BoxF32& box, const int* types,
                                const float* fprime, float fprime_i, int ti,
                                const std::uint32_t* idx, std::size_t n,
                                bool pairwise_only);
};

/// Kernels for the active tier (cheap: one atomic-free lookup).
const KernelTable& kernels();

/// Kernels for an explicit tier — parity tests compare these directly.
/// Requires tier_supported(t).
const KernelTable& kernels_for(Tier t);

namespace detail {
/// Defined in simd_avx2.cpp; returns nullptr when AVX2 is not compiled in.
const KernelTable* avx2_table();
}  // namespace detail

}  // namespace wsmd::simd
