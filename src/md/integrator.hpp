#pragma once

/// \file integrator.hpp
/// Verlet leap-frog trajectory integration (paper Eq. 5).
///
///   v(k+1/2) = v(k-1/2) + a(k) dt
///   r(k+1)   = r(k)     + v(k+1/2) dt
///
/// The scheme is second-order, time-reversible and symplectic, which is why
/// the paper can trust microsecond-scale trajectories from it. Velocities
/// are stored at half steps; `synchronized_velocity` reconstructs v(k) when
/// an on-step velocity is required (thermo output, cross-checks).

#include "md/atom_system.hpp"

namespace wsmd::md {

class LeapfrogIntegrator {
 public:
  /// dt in ps. The paper uses 2 fs = 0.002 ps.
  explicit LeapfrogIntegrator(double dt);

  double dt() const { return dt_; }

  /// Advance positions one step using current forces:
  /// kick (v += a dt) then drift (r += v dt). Positions of periodic axes
  /// are wrapped back into the box.
  void step(AtomSystem& system) const;

  /// Half "kick" only: v += a dt/2. Two half-kicks around a drift turn the
  /// leap-frog into velocity Verlet; used to start trajectories with v(0)
  /// data and by the reversibility tests.
  void half_kick(AtomSystem& system) const;

 private:
  double dt_;
};

}  // namespace wsmd::md
