#pragma once

/// \file simulation.hpp
/// Reference MD driver: owns the system, neighbor list, force kernel, and
/// integrator; runs timesteps and reports thermodynamic state.
///
/// This is the "LAMMPS role" in the reproduction: ground-truth FP64
/// trajectories, equilibration, and the CPU-side baseline whose per-step
/// cost the platform models (src/baseline) are calibrated against.

#include <functional>
#include <memory>
#include <optional>

#include "md/atom_system.hpp"
#include "md/force_eam.hpp"
#include "md/integrator.hpp"
#include "md/neighbor.hpp"

namespace wsmd::engine {
class ShardPool;
}

namespace wsmd::md {

struct SimulationConfig {
  double dt = 0.002;         ///< ps (paper: 2 fs)
  double skin = 1.0;         ///< Verlet skin (A)
  /// Berendsen-style velocity rescale toward this temperature when set
  /// (equilibration); unset = NVE.
  std::optional<double> rescale_temperature_K;
  /// Rescale interval in steps (when rescale_temperature_K is set).
  int rescale_interval = 10;
  /// Evaluate forces from a flattened r²-indexed PotentialProfile
  /// (eam/profile, built once at construction) instead of virtual per-pair
  /// potential calls — the production hot path. `false` keeps the analytic
  /// functional form in the loop (scenario key `potential = analytic`).
  bool tabulated = true;
  /// Worker threads for the force sweep (scenario backend `reference:N`).
  /// 1 = serial (no pool), 0 = hardware concurrency. Any value produces
  /// bitwise-identical trajectories: the sweep tiles atoms at a fixed width
  /// with a deterministic reduction order (see md/force_eam.hpp).
  int threads = 1;
};

/// Thermodynamic snapshot after a step.
struct ThermoState {
  long step = 0;
  double potential_energy = 0.0;  ///< eV
  double kinetic_energy = 0.0;    ///< eV
  double total_energy = 0.0;      ///< eV
  double temperature = 0.0;       ///< K
};

/// Complete dynamic state for checkpoint/restart. `neighbor_anchor` is the
/// Verlet list's last-build positions: restoring rebuilds the list from the
/// anchor (not the current positions), which reproduces both the stored
/// pair order (FP summation order) and the future displacement-triggered
/// rebuild schedule — the two things that would otherwise break bitwise
/// continuation.
struct SimulationState {
  long step = 0;
  std::vector<Vec3d> positions;
  std::vector<Vec3d> velocities;
  std::vector<Vec3d> neighbor_anchor;  ///< empty = rebuild from positions
};

class Simulation {
 public:
  Simulation(AtomSystem system, SimulationConfig config = {});
  ~Simulation();
  Simulation(Simulation&&) noexcept;
  Simulation& operator=(Simulation&&) noexcept;

  AtomSystem& system() { return system_; }
  const AtomSystem& system() const { return system_; }
  const SimulationConfig& config() const { return config_; }
  long step_count() const { return step_; }

  /// Compute forces for the current positions (builds the neighbor list on
  /// demand). Called automatically by run(); exposed for tests.
  double compute_forces();

  /// Run n timesteps; returns the thermo state after the last one.
  /// `callback`, when set, fires after every step.
  ThermoState run(long n,
                  const std::function<void(const ThermoState&)>& callback = {});

  /// Equilibrate: thermalize at T then run with periodic velocity rescaling.
  void equilibrate(double temperature_K, long steps, Rng& rng);

  /// Snapshot the dynamic state (checkpoint).
  SimulationState save_state() const;

  /// Restore a snapshot taken from an identically-built simulation: sets
  /// positions/velocities/step, rebuilds the Verlet list from the saved
  /// anchor, and recomputes forces so thermo() is immediately valid. The
  /// continued trajectory is bitwise identical to the uninterrupted run.
  void restore_state(const SimulationState& state);

  /// Thermo snapshot. Kinetic energy / temperature are *synchronized*: the
  /// stored leapfrog velocities live at half steps, so they are advanced by
  /// a half kick (v + a dt/2) before the KE sum. Without this the reported
  /// total energy carries an O(dt) sawtooth that masks true drift.
  ThermoState thermo() const;

  const NeighborList& neighbor_list() const { return neighbors_; }

  /// The flattened evaluation tables (null on the analytic path).
  const eam::ProfileF64* profile() const { return profile_.get(); }

 private:
  AtomSystem system_;
  SimulationConfig config_;
  NeighborList neighbors_;
  EamForceKernel kernel_;
  eam::ProfileF64Ptr profile_;  ///< set when config_.tabulated
  /// Force-sweep worker pool (null when config_.threads resolves to 1).
  std::unique_ptr<engine::ShardPool> pool_;
  long step_ = 0;
  double last_pe_ = 0.0;
  bool forces_current_ = false;
};

}  // namespace wsmd::md
