#include "lattice/grain_boundary.hpp"

#include <cmath>
#include <unordered_map>

#include "eam/zhou.hpp"
#include "util/error.hpp"

namespace wsmd::lattice {

namespace {

Vec3d rotate_z(const Vec3d& r, double angle_rad) {
  const double c = std::cos(angle_rad);
  const double s = std::sin(angle_rad);
  return {c * r.x - s * r.y, s * r.x + c * r.y, r.z};
}

/// Fill the axis-aligned region [0,Lx]x[ylo,yhi]x[0,Lz] with a lattice
/// rotated by `angle_rad` about z. Over-generates in the rotated frame and
/// clips, which is exact for any angle.
void fill_rotated(const UnitCell& cell, double angle_rad, double lx,
                  double ylo, double yhi, double lz,
                  std::vector<Vec3d>& out) {
  const double a = cell.a;
  // Bounding radius of the target region, seen from its center.
  const double cx = lx / 2, cy = (ylo + yhi) / 2;
  const double rad =
      std::sqrt(cx * cx + (yhi - cy) * (yhi - cy)) + 2.0 * a;
  const int nxy = static_cast<int>(std::ceil(rad / a)) + 1;
  const int nz = static_cast<int>(std::ceil(lz / a)) + 1;

  for (int ix = -nxy; ix <= nxy; ++ix) {
    for (int iy = -nxy; iy <= nxy; ++iy) {
      for (int iz = 0; iz <= nz; ++iz) {
        for (const Vec3d& b : cell.basis) {
          // Lattice point in the grain frame, centered on the region center.
          const Vec3d p{(ix + b.x) * a, (iy + b.y) * a, (iz + b.z) * a};
          Vec3d q = rotate_z({p.x, p.y, 0.0}, angle_rad);
          q.z = p.z;
          q.x += cx;
          q.y += cy;
          // Half-open clip [lo, hi): a zero-tilt bicrystal then reproduces
          // the plain replicated crystal exactly (no duplicated edge
          // planes), and rotated grains lose only a boundary sliver.
          const double eps = 1e-9;
          if (q.x < -eps || q.x >= lx - eps) continue;
          if (q.y < ylo - eps || q.y >= yhi - eps) continue;
          if (q.z < -eps || q.z >= lz - eps) continue;
          out.push_back(q);
        }
      }
    }
  }
}

struct CellKey {
  long long x, y, z;
  bool operator==(const CellKey&) const = default;
};
struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const {
    std::size_t h = 1469598103934665603ull;
    for (long long v : {k.x, k.y, k.z}) {
      h ^= static_cast<std::size_t>(v) + 0x9E3779B97F4A7C15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

GrainBoundaryStructure make_grain_boundary(const GrainBoundaryParams& params) {
  const eam::ZhouParams ep = eam::zhou_parameters(params.element);
  const UnitCell cell = UnitCell::of(ep.structure, ep.lattice_constant());
  const double a = cell.a;

  const double lx = params.cells_x * a;
  const double ly = params.cells_y * a;
  const double lz = params.cells_z * a;
  const double boundary_y = ly / 2;
  const double half_angle =
      params.tilt_angle_deg * (std::acos(-1.0) / 180.0) / 2.0;

  std::vector<Vec3d> grain_a, grain_b;
  fill_rotated(cell, +half_angle, lx, 0.0, boundary_y, lz, grain_a);
  fill_rotated(cell, -half_angle, lx, boundary_y, ly, lz, grain_b);

  // Fuse seam atoms: remove grain-B atoms too close to any grain-A atom.
  const double dmin = params.min_separation_frac * ep.re;
  const double dmin2 = dmin * dmin;
  std::unordered_map<CellKey, std::vector<std::size_t>, CellKeyHash> grid;
  auto key_of = [dmin](const Vec3d& r) {
    return CellKey{static_cast<long long>(std::floor(r.x / dmin)),
                   static_cast<long long>(std::floor(r.y / dmin)),
                   static_cast<long long>(std::floor(r.z / dmin))};
  };
  for (std::size_t i = 0; i < grain_a.size(); ++i) {
    grid[key_of(grain_a[i])].push_back(i);
  }

  GrainBoundaryStructure gb;
  gb.boundary_y = boundary_y;
  gb.grain_a_atoms = grain_a.size();

  Structure& s = gb.structure;
  s.positions = grain_a;
  for (const Vec3d& q : grain_b) {
    bool fused = false;
    const CellKey c = key_of(q);
    for (long long dx = -1; dx <= 1 && !fused; ++dx) {
      for (long long dy = -1; dy <= 1 && !fused; ++dy) {
        for (long long dz = -1; dz <= 1 && !fused; ++dz) {
          const auto it = grid.find(CellKey{c.x + dx, c.y + dy, c.z + dz});
          if (it == grid.end()) continue;
          for (std::size_t i : it->second) {
            const Vec3d d = q - grain_a[i];
            if (norm2(d) < dmin2) {
              fused = true;
              break;
            }
          }
        }
      }
    }
    if (fused) {
      ++gb.fused_atoms;
    } else {
      s.positions.push_back(q);
    }
  }
  gb.grain_b_atoms = s.positions.size() - grain_a.size();

  s.types.assign(s.positions.size(), 0);
  const double pad = 10.0;
  s.box = Box({-pad, -pad, -pad}, {lx + pad, ly + pad, lz + pad},
              {false, false, false});
  return gb;
}

GrainBoundaryStructure make_grain_boundary_with_atom_count(
    GrainBoundaryParams params, std::size_t target_atoms) {
  WSMD_REQUIRE(target_atoms >= 100, "target atom count too small");
  const eam::ZhouParams ep = eam::zhou_parameters(params.element);
  const UnitCell cell = UnitCell::of(ep.structure, ep.lattice_constant());
  const double per_cell = static_cast<double>(cell.atoms_per_cell());

  // Solve cells_x ~ cells_y for the target, keeping cells_z fixed.
  const double cells_needed =
      static_cast<double>(target_atoms) / (per_cell * params.cells_z);
  const int side = static_cast<int>(std::lround(std::sqrt(cells_needed)));
  params.cells_x = std::max(4, side);
  params.cells_y = std::max(4, side);
  return make_grain_boundary(params);
}

}  // namespace wsmd::lattice
