#include "lattice/lattice.hpp"

#include <cmath>
#include <unordered_map>

#include "eam/zhou.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace wsmd::lattice {

UnitCell UnitCell::fcc(double a) {
  WSMD_REQUIRE(a > 0.0, "lattice constant must be positive");
  return {"fcc", a,
          {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}}};
}

UnitCell UnitCell::bcc(double a) {
  WSMD_REQUIRE(a > 0.0, "lattice constant must be positive");
  return {"bcc", a, {{0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}}};
}

UnitCell UnitCell::sc(double a) {
  WSMD_REQUIRE(a > 0.0, "lattice constant must be positive");
  return {"sc", a, {{0.0, 0.0, 0.0}}};
}

UnitCell UnitCell::of(const std::string& structure, double a) {
  if (structure == "fcc") return fcc(a);
  if (structure == "bcc") return bcc(a);
  if (structure == "sc") return sc(a);
  WSMD_REQUIRE(false, "unknown structure '" << structure << "'");
  return sc(a);
}

Structure replicate(const UnitCell& cell, int nx, int ny, int nz, int type,
                    std::array<bool, 3> periodic, double open_padding) {
  WSMD_REQUIRE(nx > 0 && ny > 0 && nz > 0,
               "replication counts must be positive");
  Structure s;
  const double a = cell.a;
  const std::size_t natoms = static_cast<std::size_t>(nx) * ny * nz *
                             cell.atoms_per_cell();
  s.positions.reserve(natoms);
  s.types.assign(natoms, type);

  for (int ix = 0; ix < nx; ++ix) {
    for (int iy = 0; iy < ny; ++iy) {
      for (int iz = 0; iz < nz; ++iz) {
        for (const Vec3d& b : cell.basis) {
          s.positions.push_back({(ix + b.x) * a, (iy + b.y) * a, (iz + b.z) * a});
        }
      }
    }
  }

  Vec3d lo{0, 0, 0}, hi{nx * a, ny * a, nz * a};
  for (std::size_t axis = 0; axis < 3; ++axis) {
    if (!periodic[axis]) {
      lo[axis] -= open_padding;
      hi[axis] += open_padding;
    }
  }
  s.box = Box(lo, hi, periodic);
  return s;
}

void paper_replication(const std::string& element, int& nx, int& ny, int& nz) {
  if (element == "Cu") {
    nx = 174; ny = 192; nz = 6;   // FCC, 4 atoms/cell -> 801,792
  } else if (element == "W" || element == "Ta") {
    nx = 256; ny = 261; nz = 6;   // BCC, 2 atoms/cell -> 801,792... (x2x6)
  } else {
    WSMD_REQUIRE(false, "no paper benchmark geometry for '" << element << "'");
  }
}

Structure paper_slab(const std::string& element, int scale) {
  WSMD_REQUIRE(scale >= 1, "scale must be >= 1");
  int nx = 0, ny = 0, nz = 0;
  paper_replication(element, nx, ny, nz);
  nx = (nx + scale - 1) / scale;
  ny = (ny + scale - 1) / scale;
  // z stays at the paper's slab thickness (that is what makes it a slab).

  const eam::ZhouParams p = eam::zhou_parameters(element);
  const UnitCell cell = UnitCell::of(p.structure, p.lattice_constant());
  return replicate(cell, nx, ny, nz, /*type=*/0,
                   /*periodic=*/{false, false, false});
}

std::size_t apply_vacancies(Structure& s, double fraction, Rng& rng) {
  WSMD_REQUIRE(fraction >= 0.0 && fraction < 1.0,
               "vacancy fraction must be in [0, 1), got " << fraction);
  const std::size_t n = s.size();
  const auto remove =
      static_cast<std::size_t>(std::llround(fraction * static_cast<double>(n)));
  if (remove == 0) return 0;
  WSMD_REQUIRE(remove < n, "vacancies would remove every atom");

  // Partial Fisher-Yates: draw `remove` distinct victims, then rebuild the
  // arrays keeping survivor order (stable order keeps downstream mappings
  // deterministic).
  std::vector<std::size_t> index(n);
  for (std::size_t i = 0; i < n; ++i) index[i] = i;
  std::vector<bool> removed(n, false);
  for (std::size_t k = 0; k < remove; ++k) {
    const std::size_t pick = k + rng.uniform_index(n - k);
    std::swap(index[k], index[pick]);
    removed[index[k]] = true;
  }
  std::vector<Vec3d> positions;
  std::vector<int> types;
  positions.reserve(n - remove);
  types.reserve(n - remove);
  for (std::size_t i = 0; i < n; ++i) {
    if (removed[i]) continue;
    positions.push_back(s.positions[i]);
    types.push_back(s.types[i]);
  }
  s.positions = std::move(positions);
  s.types = std::move(types);
  return remove;
}

int neighbor_count_within(const Structure& s, std::size_t i, double rcut) {
  WSMD_REQUIRE(i < s.size(), "atom index out of range");
  const double rc2 = rcut * rcut;
  int count = 0;
  for (std::size_t j = 0; j < s.size(); ++j) {
    if (j == i) continue;
    const Vec3d d = s.box.minimum_image(s.positions[i], s.positions[j]);
    if (norm2(d) < rc2) ++count;
  }
  return count;
}

namespace {

/// Spatial hash key for cells of edge `cell`.
struct CellKey {
  long long x, y, z;
  bool operator==(const CellKey&) const = default;
};

struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const {
    // FNV-style mix of the three coordinates.
    std::size_t h = 1469598103934665603ull;
    for (long long v : {k.x, k.y, k.z}) {
      h ^= static_cast<std::size_t>(v) + 0x9E3779B97F4A7C15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

double mean_neighbor_count(const Structure& s, double rcut,
                           std::size_t sample) {
  WSMD_REQUIRE(s.size() > 0, "empty structure");
  WSMD_REQUIRE(rcut > 0.0, "cutoff must be positive");

  // Periodic axes break the unbounded spatial hash (neighbors across the
  // wrap land in distant cells), so fall back to the exact O(sample * N)
  // loop there; it is a diagnostics helper, not a hot path.
  if (s.box.periodic[0] || s.box.periodic[1] || s.box.periodic[2]) {
    Rng rng(0xC0FFEE);
    const std::size_t n = std::min(sample, s.size());
    const double rc2 = rcut * rcut;
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i =
          n == s.size() ? k
                        : static_cast<std::size_t>(rng.uniform_index(s.size()));
      int count = 0;
      for (std::size_t j = 0; j < s.size(); ++j) {
        if (j == i) continue;
        if (norm2(s.box.minimum_image(s.positions[i], s.positions[j])) < rc2) {
          ++count;
        }
      }
      total += count;
    }
    return total / static_cast<double>(n);
  }

  // Hash all atoms into rcut-sized cells, then measure a deterministic
  // sample of atoms against their 27-cell stencil.
  std::unordered_map<CellKey, std::vector<std::size_t>, CellKeyHash> grid;
  grid.reserve(s.size());
  auto key_of = [rcut](const Vec3d& r) {
    return CellKey{static_cast<long long>(std::floor(r.x / rcut)),
                   static_cast<long long>(std::floor(r.y / rcut)),
                   static_cast<long long>(std::floor(r.z / rcut))};
  };
  for (std::size_t i = 0; i < s.size(); ++i) {
    grid[key_of(s.positions[i])].push_back(i);
  }

  Rng rng(0xC0FFEE);
  const std::size_t n = std::min(sample, s.size());
  const double rc2 = rcut * rcut;
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i =
        n == s.size() ? k : static_cast<std::size_t>(rng.uniform_index(s.size()));
    const CellKey c = key_of(s.positions[i]);
    int count = 0;
    for (long long dx = -1; dx <= 1; ++dx) {
      for (long long dy = -1; dy <= 1; ++dy) {
        for (long long dz = -1; dz <= 1; ++dz) {
          const auto it = grid.find(CellKey{c.x + dx, c.y + dy, c.z + dz});
          if (it == grid.end()) continue;
          for (std::size_t j : it->second) {
            if (j == i) continue;
            const Vec3d d = s.box.minimum_image(s.positions[i], s.positions[j]);
            if (norm2(d) < rc2) ++count;
          }
        }
      }
    }
    total += count;
  }
  return total / static_cast<double>(n);
}

}  // namespace wsmd::lattice
