#pragma once

/// \file lattice.hpp
/// Crystal lattice generation: cubic unit cells, replicated blocks, and the
/// paper's thin-slab benchmark geometries.
///
/// The paper's reference problems are uniform single-species crystals in
/// thin-slab geometry (~60nm x 60nm x 2nm, open boundaries; Sec. IV-B):
///   Cu  FCC  174 x 192 x 6 unit cells  = 801,792 atoms
///   W   BCC  256 x 261 x 6 unit cells  = 801,792 atoms
///   Ta  BCC  256 x 261 x 6 unit cells  = 801,792 atoms

#include <string>
#include <vector>

#include "util/box.hpp"
#include "util/random.hpp"
#include "util/vec3.hpp"

namespace wsmd::lattice {

/// Cubic Bravais lattice with a fractional-coordinate basis.
struct UnitCell {
  std::string name;          ///< "fcc", "bcc", "sc"
  double a = 1.0;            ///< cubic lattice constant (A)
  std::vector<Vec3d> basis;  ///< fractional coordinates in [0,1)^3

  std::size_t atoms_per_cell() const { return basis.size(); }

  static UnitCell fcc(double a);
  static UnitCell bcc(double a);
  static UnitCell sc(double a);

  /// Unit cell for a named structure tag ("fcc"/"bcc"/"sc").
  static UnitCell of(const std::string& structure, double a);
};

/// A generated atomic configuration: the interchange type between the
/// lattice generators and the MD engines (velocities are added later by the
/// thermostat; all atoms share `type` semantics with the potential).
struct Structure {
  Box box;
  std::vector<Vec3d> positions;
  std::vector<int> types;

  std::size_t size() const { return positions.size(); }
};

/// Replicate `cell` nx x ny x nz times. Every atom gets type `type`.
/// Periodic flags apply to the resulting box; for open axes the box is
/// padded by `open_padding` on each side so surface atoms are interior to
/// the domain (the paper's slabs let atoms migrate past the crystal edge).
Structure replicate(const UnitCell& cell, int nx, int ny, int nz, int type = 0,
                    std::array<bool, 3> periodic = {false, false, false},
                    double open_padding = 10.0);

/// Paper benchmark slab for a named element ("Cu" -> FCC 174x192x6, "W"/"Ta"
/// -> BCC 256x261x6) with the Zhou lattice constant. `scale` shrinks the
/// replication counts (ceil(n/scale)) so tests can run miniature versions of
/// the same geometry; scale=1 is the full 801,792-atom problem.
Structure paper_slab(const std::string& element, int scale = 1);

/// Replication counts used by `paper_slab` (Table I "Replication" column).
void paper_replication(const std::string& element, int& nx, int& ny, int& nz);

/// Remove a random `fraction` of the atoms (vacancy defects). The removal
/// count is round(fraction * size); the survivors keep their relative
/// order, so the result is deterministic for a given structure and RNG
/// state. Returns the number of atoms removed.
std::size_t apply_vacancies(Structure& s, double fraction, Rng& rng);

/// Count atoms within distance `rcut` of atom `i` (brute force; test/debug
/// helper for neighbor-count validation, e.g. paper Table I interactions).
int neighbor_count_within(const Structure& s, std::size_t i, double rcut);

/// Mean neighbor count over a sample of atoms (brute force over cells via
/// spatial hashing; suitable up to ~1e6 atoms).
double mean_neighbor_count(const Structure& s, double rcut,
                           std::size_t sample = 2000);

}  // namespace wsmd::lattice
