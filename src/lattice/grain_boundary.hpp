#pragma once

/// \file grain_boundary.hpp
/// Bicrystal (grain boundary) generator.
///
/// Grain boundaries are the paper's motivating science problem (Sec. I,
/// Fig. 2): two crystal lattices of different orientation meeting at an
/// interface, in a thin slab with open boundaries. This generator builds a
/// symmetric tilt bicrystal: grain A rotated by +theta/2 and grain B by
/// -theta/2 about the slab normal, meeting at a plane. Atoms from opposite
/// grains closer than `min_separation` are fused (one deleted), the standard
/// construction for atomistic GB models.

#include <string>

#include "lattice/lattice.hpp"

namespace wsmd::lattice {

struct GrainBoundaryParams {
  std::string element = "W";  ///< element (Zhou parameter set)
  double tilt_angle_deg = 20.0;  ///< total misorientation (theta)
  int cells_x = 40;  ///< approximate extent along the boundary (unit cells)
  int cells_y = 40;  ///< approximate extent across the boundary (unit cells)
  int cells_z = 4;   ///< slab thickness (unit cells)
  /// Atoms from different grains closer than this fraction of the
  /// nearest-neighbor distance are fused at the seam.
  double min_separation_frac = 0.7;
};

/// Result plus bookkeeping the benches report.
struct GrainBoundaryStructure {
  Structure structure;
  double boundary_y = 0.0;      ///< interface plane position (A)
  std::size_t fused_atoms = 0;  ///< atoms removed at the seam
  std::size_t grain_a_atoms = 0;
  std::size_t grain_b_atoms = 0;
};

/// Build the bicrystal. The returned box has open boundaries in all
/// directions, matching the paper's thin-slab setup.
GrainBoundaryStructure make_grain_boundary(const GrainBoundaryParams& params);

/// Build a bicrystal with approximately `target_atoms` atoms, mirroring the
/// paper's Fig. 9 experiment (61,600 W atoms on 62,500 cores). The slab
/// thickness is kept at params.cells_z; x/y extents are solved for.
GrainBoundaryStructure make_grain_boundary_with_atom_count(
    GrainBoundaryParams params, std::size_t target_atoms);

}  // namespace wsmd::lattice
