#include "perf/timescale.hpp"

#include "util/error.hpp"

namespace wsmd::perf {

double reachable_timescale_seconds(double steps_per_second, double dt_fs,
                                   double wall_days) {
  WSMD_REQUIRE(steps_per_second > 0.0 && dt_fs > 0.0 && wall_days > 0.0,
               "timescale inputs must be positive");
  const double wall_seconds = wall_days * 86400.0;
  return steps_per_second * wall_seconds * dt_fs * 1e-15;
}

double length_scale_meters(double atoms_per_edge, double spacing_angstrom) {
  WSMD_REQUIRE(atoms_per_edge > 0.0 && spacing_angstrom > 0.0,
               "length inputs must be positive");
  return atoms_per_edge * spacing_angstrom * 1e-10;
}

}  // namespace wsmd::perf
