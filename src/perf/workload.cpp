#include "perf/workload.hpp"

#include "util/error.hpp"

namespace wsmd::perf {

namespace {

const PaperWorkload kWorkloads[] = {
    // element structure rx ry rz atoms inter cand b  predicted measured frontier quartz
    {"Cu", "fcc", 174, 192, 6, 801792, 42, 224, 7, 104895.0, 106313.0, 973.0,
     3120.0},
    {"W", "bcc", 256, 261, 6, 801792, 59, 224, 7, 93048.0, 96140.0, 998.0,
     3633.0},
    {"Ta", "bcc", 256, 261, 6, 801792, 14, 80, 4, 270097.0, 274016.0, 1530.0,
     4938.0},
};

}  // namespace

PaperWorkload paper_workload(const std::string& element) {
  for (const auto& w : kWorkloads) {
    if (w.element == element) return w;
  }
  WSMD_REQUIRE(false, "no paper workload for element '" << element << "'");
  return {};
}

std::vector<PaperWorkload> all_paper_workloads() {
  return {kWorkloads[0], kWorkloads[1], kWorkloads[2]};
}

Platform platform_cs2() {
  // WSE-2: 23 kW system power (paper Sec. IV-A); FP32 peak per Table IV.
  return {"CS-2", "1 WSE", 1.45, 23000.0};
}

Platform platform_frontier_32gcd() {
  // 4 Frontier nodes (32 GCDs); ~3.4 kW per node at load.
  return {"Frontier", "32 GCD", 0.77, 4 * 3400.0};
}

Platform platform_quartz_800cpu() {
  // 400 dual-socket Broadwell nodes; ~350 W per node at load.
  return {"Quartz", "800 CPU", 0.50, 400 * 350.0};
}

}  // namespace wsmd::perf
