#include "perf/flop_model.hpp"

#include "util/error.hpp"

namespace wsmd::perf {

FlopModel::FlopModel() {
  using B = FlopTerm::Basis;
  rows_ = {
      // --- per candidate (paper Table III top block; the dot product is
      // counted FMA-style as 3 adds + 3 muls, matching the published
      // subtotal of 6 adds / 3 muls) ---
      {"r_ij <- r_j - r_i", 3, 0, 0, "Relative displacement", B::Candidate},
      {"r2_ij <- r_ij . r_ij", 3, 3, 0, "Squared distance", B::Candidate},
      {"r2_ij < r2_cut", 0, 0, 1, "Threshold check", B::Candidate},
      // --- per interaction ---
      {"r^-1 <- (r2)^-1/2", 3, 8, 1, "Newton-Raphson", B::Interaction},
      {"r <- r2 * r^-1", 0, 1, 0, "Euclidean distance", B::Interaction},
      {"k, dx <- segment(r)", 1, 1, 2, "Spline segment", B::Interaction},
      {"sum_j rho[k](dx)", 3, 2, 0, "Density evaluation", B::Interaction},
      {"rho'[k](dx), phi'[k](dx)", 2, 2, 0, "Linear splines", B::Interaction},
      {"sum_j ((F'_i+F'_j) rho'+phi') r^-1 r_ij", 5, 5, 0, "Force evaluation",
       B::Interaction},
      // --- fixed ---
      {"k, dx <- segment(rho_i)", 1, 1, 2, "Spline segment", B::Fixed},
      {"F'_i[k](dx)", 1, 1, 0, "Embedding component", B::Fixed},
      {"integrate v_i, r_i", 6, 0, 0, "Verlet integration", B::Fixed},
  };
}

namespace {
int subtotal(const std::vector<FlopTerm>& rows, FlopTerm::Basis basis) {
  int total = 0;
  for (const auto& r : rows) {
    if (r.basis == basis) total += r.total();
  }
  return total;
}
}  // namespace

int FlopModel::per_candidate_ops() const {
  return subtotal(rows_, FlopTerm::Basis::Candidate);
}

int FlopModel::per_interaction_ops() const {
  return subtotal(rows_, FlopTerm::Basis::Interaction);
}

int FlopModel::fixed_ops() const {
  return subtotal(rows_, FlopTerm::Basis::Fixed);
}

double FlopModel::flops_per_atom_step(double ncandidates,
                                      double ninteractions) const {
  WSMD_REQUIRE(ncandidates >= 0.0 && ninteractions >= 0.0,
               "counts must be non-negative");
  return per_candidate_ops() * ncandidates +
         per_interaction_ops() * ninteractions + fixed_ops();
}

double FlopModel::algorithm_flops(double atoms, double ncandidates,
                                  double ninteractions,
                                  double steps_per_second) const {
  return flops_per_atom_step(ncandidates, ninteractions) * atoms *
         steps_per_second;
}

double FlopModel::utilization(double atoms, double ncandidates,
                              double ninteractions, double steps_per_second,
                              double peak_pflops) const {
  WSMD_REQUIRE(peak_pflops > 0.0, "peak must be positive");
  return algorithm_flops(atoms, ncandidates, ninteractions, steps_per_second) /
         (peak_pflops * 1e15);
}

double FlopModel::at_peak_ns(int ops, double clock_ghz) const {
  WSMD_REQUIRE(clock_ghz > 0.0, "clock must be positive");
  // Two 32-bit operations per cycle per core (paper Sec. IV-A).
  const double cycles = static_cast<double>(ops) / 2.0;
  return cycles / clock_ghz;
}

}  // namespace wsmd::perf
