#pragma once

/// \file multiwafer.hpp
/// Multi-wafer weak-scaling model (paper Sec. VI-C, Table VI).
///
/// Non-overlapping subdomains are distributed to WSE nodes; each node holds
/// a ghost halo lambda lattice units wide. A node can advance
/// k = floor(lambda * r_lattice / (2 rcut)) timesteps before the halo is
/// exhausted, then refreshes 192 bits per ghost atom over the inter-node
/// link. Reproducing the paper's own Table VI numbers pins the transfer
/// down as fully overlapped with compute (see EXPERIMENTS.md):
///
///     t_period = k * twall + tau
///     rate     = k / t_period
///
/// Convention note: the paper's text defines Ninterior = X^2 Z with ghosts
/// *added*; its Table VI instead treats X as the full node extent (so
/// N_atom = X^2 Z is pinned at wafer capacity and the interior shrinks with
/// lambda). The table convention reproduces every published number
/// exactly, so that is what this model implements.

namespace wsmd::perf {

struct MultiWaferParams {
  int x_extent = 0;        ///< full node edge, lattice units (Table VI "X")
  int z_extent = 0;        ///< slab thickness, lattice units ("Z")
  double rcut_over_rlattice = 1.0;  ///< Table VI ratio
  double twall_us = 1.0;   ///< single-wafer timestep time (microseconds)
  double omega_tbps = 1.2; ///< inter-node bandwidth, terabits/s
  double tau_us = 2.0;     ///< inter-node latency, microseconds
};

struct MultiWaferResult {
  int lambda = 0;          ///< ghost halo width (lattice units)
  int k = 0;               ///< timesteps per refresh period
  long natom = 0;          ///< atoms held per node (interior + ghosts)
  long ninterior = 0;
  double interior_fraction = 0.0;
  double ghost_transfer_us = 0.0;
  double period_us = 0.0;
  double steps_per_second = 0.0;
  double single_wafer_steps_per_second = 0.0;
  double performance_fraction = 0.0;  ///< vs single wafer
};

/// Evaluate the model for a given interior fraction target (the paper
/// reports 20% and 80%): lambda is solved from
/// (X - 2 lambda)^2 / X^2 = target.
MultiWaferResult multiwafer_performance(const MultiWaferParams& params,
                                        double interior_fraction_target);

/// Evaluate for an explicit halo width.
MultiWaferResult multiwafer_performance_lambda(const MultiWaferParams& params,
                                               int lambda);

}  // namespace wsmd::perf
