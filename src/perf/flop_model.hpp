#pragma once

/// \file flop_model.hpp
/// Instruction-level FLOP accounting of the EAM timestep (paper Table III).
///
/// The paper counts every add, multiply, and "other" (conversion, compare,
/// segment lookup) in the three cost bases — per candidate, per
/// interaction, and fixed — then converts the totals to at-peak run time to
/// obtain per-component utilization (20% / 30% / 1%) and whole-platform
/// utilization (Table IV).

#include <string>
#include <vector>

namespace wsmd::perf {

/// One row of Table III.
struct FlopTerm {
  std::string term;   ///< e.g. "r_ij <- r_j - r_i"
  int adds = 0;
  int muls = 0;
  int others = 0;     ///< conversions, compares, segment arithmetic
  std::string note;   ///< e.g. "Relative displacement"
  enum class Basis { Candidate, Interaction, Fixed } basis;
  int total() const { return adds + muls + others; }
};

class FlopModel {
 public:
  FlopModel();

  const std::vector<FlopTerm>& rows() const { return rows_; }

  /// Basis subtotals (ops, counting adds+muls+others like the paper).
  int per_candidate_ops() const;
  int per_interaction_ops() const;
  int fixed_ops() const;

  /// FLOPs executed by one worker in one timestep.
  double flops_per_atom_step(double ncandidates, double ninteractions) const;

  /// Whole-machine algorithmic FLOP rate (FLOP/s) for `atoms` workers
  /// advancing at `steps_per_second`.
  double algorithm_flops(double atoms, double ncandidates,
                         double ninteractions, double steps_per_second) const;

  /// Utilization = algorithmic FLOP rate / platform peak.
  double utilization(double atoms, double ncandidates, double ninteractions,
                     double steps_per_second, double peak_pflops) const;

  /// At-peak time (ns) for a basis subtotal on a WSE core that retires two
  /// 32-bit operations per cycle (paper Sec. IV-A) at `clock_ghz`. Used for
  /// the per-component utilization column of Table III.
  double at_peak_ns(int ops, double clock_ghz = 0.94) const;

 private:
  std::vector<FlopTerm> rows_;
};

}  // namespace wsmd::perf
