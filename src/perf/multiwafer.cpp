#include "perf/multiwafer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::perf {

MultiWaferResult multiwafer_performance_lambda(const MultiWaferParams& p,
                                               int lambda) {
  WSMD_REQUIRE(p.x_extent > 0 && p.z_extent > 0, "bad node extents");
  WSMD_REQUIRE(lambda > 0 && 2 * lambda < p.x_extent,
               "halo must leave a positive interior");
  WSMD_REQUIRE(p.twall_us > 0.0 && p.omega_tbps > 0.0, "bad model inputs");

  MultiWaferResult r;
  r.lambda = lambda;
  r.natom = static_cast<long>(p.x_extent) * p.x_extent * p.z_extent;
  const long interior_edge = p.x_extent - 2 * lambda;
  r.ninterior = interior_edge * interior_edge * p.z_extent;
  r.interior_fraction =
      static_cast<double>(r.ninterior) / static_cast<double>(r.natom);

  // Steps per period: the outermost 2*rcut-wide strip of ghosts is
  // invalidated per step, so k = lambda * r_lattice / (2 rcut) steps fit.
  r.k = static_cast<int>(std::floor(
      static_cast<double>(lambda) / (2.0 * p.rcut_over_rlattice)));
  WSMD_REQUIRE(r.k >= 1, "halo too thin for even one timestep");

  const long nghost = r.natom - r.ninterior;
  // 192 bits of refreshed position+velocity per ghost (paper Sec. VI-C).
  r.ghost_transfer_us =
      192.0 * static_cast<double>(nghost) / (p.omega_tbps * 1e12) * 1e6;
  const double compute_us = r.k * p.twall_us;
  // Every published Table VI row reproduces exactly with the ghost
  // transfer fully overlapped behind compute (pipelined across periods),
  // leaving only the inter-node latency exposed; the transfer time is
  // reported as a diagnostic. See EXPERIMENTS.md for the one configuration
  // (Ta, high utilization) where the bandwidth term would exceed compute.
  r.period_us = compute_us + p.tau_us;
  r.steps_per_second = static_cast<double>(r.k) / (r.period_us * 1e-6);
  r.single_wafer_steps_per_second = 1.0 / (p.twall_us * 1e-6);
  r.performance_fraction =
      r.steps_per_second / r.single_wafer_steps_per_second;
  return r;
}

MultiWaferResult multiwafer_performance(const MultiWaferParams& p,
                                        double interior_fraction_target) {
  WSMD_REQUIRE(interior_fraction_target > 0.0 &&
                   interior_fraction_target < 1.0,
               "interior fraction must be in (0,1)");
  // (X - 2 lambda)^2 / X^2 = f  =>  lambda = X (1 - sqrt(f)) / 2.
  const int lambda = static_cast<int>(std::round(
      p.x_extent * (1.0 - std::sqrt(interior_fraction_target)) / 2.0));
  return multiwafer_performance_lambda(p, lambda);
}

}  // namespace wsmd::perf
