#pragma once

/// \file timescale.hpp
/// Reachable-simulated-timescale model (paper Fig. 1).
///
/// A platform advancing at R timesteps/s with a dt-femtosecond step covers
/// R * dt * wall_seconds of simulated time. The paper's Fig. 1 stars place
/// a 30-day Ta run at ~1.3 ms simulated on the WSE versus ~7 us on
/// Frontier (the 179x ratio), against the backdrop of the QM / MD / CM
/// regime boxes.

namespace wsmd::perf {

/// Simulated seconds covered by `wall_days` of wall-clock time at
/// `steps_per_second` with a `dt_fs` femtosecond timestep.
double reachable_timescale_seconds(double steps_per_second, double dt_fs,
                                   double wall_days);

/// Length scale (meters) of an N-atom slab with the given mean atomic
/// spacing in Angstrom (the x-axis of Fig. 1).
double length_scale_meters(double atoms_per_edge, double spacing_angstrom);

}  // namespace wsmd::perf
