#pragma once

/// \file workload.hpp
/// The paper's benchmark workloads and published reference numbers.
///
/// One place holds every number the evaluation section reports (Table I,
/// Table IV platforms, Fig. 7 anchors) so benches and EXPERIMENTS.md
/// compare our measured/model values against the same source of truth.

#include <string>
#include <vector>

namespace wsmd::perf {

/// One row of paper Table I plus derived quantities.
struct PaperWorkload {
  std::string element;       ///< "Cu", "W", "Ta"
  std::string structure;     ///< "fcc" / "bcc"
  int repl_x, repl_y, repl_z;  ///< replication (Table I)
  long atoms;                ///< 801,792 for all three
  int interactions;          ///< per-atom bulk interactions (Table I)
  int candidates;            ///< exchanged candidates (Table I)
  int b;                     ///< neighborhood radius: (2b+1)^2-1 = candidates
  double predicted_steps_per_s;  ///< paper's model prediction (Table I)
  double measured_steps_per_s;   ///< paper's WSE measurement (Table I)
  double frontier_steps_per_s;   ///< best LAMMPS/GPU rate (Table I)
  double quartz_steps_per_s;     ///< best LAMMPS/CPU rate (Table I)
};

/// Workload for one of the paper's three elements; throws otherwise.
PaperWorkload paper_workload(const std::string& element);

/// All three, in paper order (Cu, W, Ta).
std::vector<PaperWorkload> all_paper_workloads();

/// Peak-FLOPS platform descriptors of paper Table IV.
struct Platform {
  std::string name;   ///< "CS-2", "Frontier", "Quartz"
  std::string chips;  ///< "1 WSE", "32 GCD", "800 CPU"
  double peak_pflops;
  double power_watts;  ///< power at the Table IV configuration
};

Platform platform_cs2();
Platform platform_frontier_32gcd();
Platform platform_quartz_800cpu();

}  // namespace wsmd::perf
