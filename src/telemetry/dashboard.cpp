#include "telemetry/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace wsmd::telemetry {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string fmt(double v, const char* spec = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

/// Human-ish magnitude formatting for tile values (1.23e+07 -> "12.3M").
std::string fmt_mag(double v) {
  const double a = std::abs(v);
  if (a >= 1e9) return fmt(v / 1e9, "%.3g") + "G";
  if (a >= 1e6) return fmt(v / 1e6, "%.3g") + "M";
  if (a >= 1e3) return fmt(v / 1e3, "%.3g") + "k";
  return fmt(v, "%.4g");
}

/// Inline SVG sparkline of one series: a filled area under a polyline,
/// scaled to the series' own [min, max]. Self-contained by construction —
/// coordinates and colors only, no references.
std::string sparkline(const std::vector<double>& values, int width = 280,
                      int height = 64) {
  std::ostringstream os;
  os << "<svg viewBox=\"0 0 " << width << " " << height
     << "\" width=\"" << width << "\" height=\"" << height
     << "\" role=\"img\">";
  if (values.size() < 2) {
    os << "<text x=\"8\" y=\"" << height / 2
       << "\" class=\"nodata\">not enough snapshots</text></svg>";
    return os.str();
  }
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo;
  const double pad = 6.0;
  std::ostringstream pts;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x =
        pad + (width - 2 * pad) * static_cast<double>(i) /
                  static_cast<double>(values.size() - 1);
    const double frac = span > 0.0 ? (values[i] - lo) / span : 0.5;
    const double y = height - pad - (height - 2 * pad) * frac;
    if (i > 0) pts << " ";
    pts << fmt(x, "%.1f") << "," << fmt(y, "%.1f");
  }
  os << "<polyline fill=\"none\" stroke=\"#3572b0\" stroke-width=\"1.5\" "
        "points=\""
     << pts.str() << "\"/>";
  os << "</svg>";
  return os.str();
}

/// One labeled sparkline card: title, min/last/max caption, plot.
std::string spark_card(const std::string& title,
                       const std::vector<double>& values) {
  std::ostringstream os;
  double lo = 0.0, hi = 0.0, last = 0.0;
  if (!values.empty()) {
    lo = *std::min_element(values.begin(), values.end());
    hi = *std::max_element(values.begin(), values.end());
    last = values.back();
  }
  os << "<div class=\"card\"><h3>" << html_escape(title) << "</h3>"
     << "<div class=\"caption\">last " << fmt_mag(last) << " · min "
     << fmt_mag(lo) << " · max " << fmt_mag(hi) << "</div>"
     << sparkline(values) << "</div>\n";
  return os.str();
}

/// Horizontal bar pair (busy solid, wait hatched-lighter) per shard.
std::string shard_bars(const std::vector<double>& busy,
                       const std::vector<double>& wait) {
  const int width = 420, row_h = 18, pad = 4;
  double hi = 0.0;
  for (std::size_t i = 0; i < busy.size(); ++i) {
    hi = std::max(hi, busy[i] + (i < wait.size() ? wait[i] : 0.0));
  }
  if (hi <= 0.0) hi = 1.0;
  const int label_w = 64;
  const int h = static_cast<int>(busy.size()) * row_h + 2 * pad;
  std::ostringstream os;
  os << "<svg viewBox=\"0 0 " << width << " " << h << "\" width=\"" << width
     << "\" height=\"" << h << "\" role=\"img\">";
  for (std::size_t i = 0; i < busy.size(); ++i) {
    const double w_total = width - label_w - 2 * pad;
    const double bw = w_total * busy[i] / hi;
    const double ww =
        w_total * (i < wait.size() ? wait[i] : 0.0) / hi;
    const int y = pad + static_cast<int>(i) * row_h;
    os << "<text x=\"0\" y=\"" << y + 13
       << "\" class=\"axis\">shard" << i << "</text>"
       << "<rect x=\"" << label_w << "\" y=\"" << y + 3 << "\" width=\""
       << fmt(bw, "%.1f") << "\" height=\"" << row_h - 6
       << "\" fill=\"#3572b0\"/>"
       << "<rect x=\"" << fmt(label_w + bw, "%.1f") << "\" y=\"" << y + 3
       << "\" width=\"" << fmt(ww, "%.1f") << "\" height=\"" << row_h - 6
       << "\" fill=\"#c9d6e8\"/>";
  }
  os << "</svg>";
  return os.str();
}

/// 8-bin histogram of the per-snapshot imbalance ratio.
std::string imbalance_histogram(const std::vector<double>& values) {
  const int bins = 8, width = 280, height = 90, pad = 6;
  std::ostringstream os;
  os << "<svg viewBox=\"0 0 " << width << " " << height << "\" width=\""
     << width << "\" height=\"" << height << "\" role=\"img\">";
  if (values.empty()) {
    os << "<text x=\"8\" y=\"" << height / 2
       << "\" class=\"nodata\">no snapshots</text></svg>";
    return os.str();
  }
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  if (hi - lo < 1e-12) {
    lo -= 0.5;
    hi += 0.5;
  }
  std::vector<int> counts(bins, 0);
  for (double v : values) {
    int b = static_cast<int>((v - lo) / (hi - lo) * bins);
    b = std::clamp(b, 0, bins - 1);
    ++counts[static_cast<std::size_t>(b)];
  }
  const int peak = *std::max_element(counts.begin(), counts.end());
  const double bw = static_cast<double>(width - 2 * pad) / bins;
  for (int b = 0; b < bins; ++b) {
    const double frac =
        static_cast<double>(counts[static_cast<std::size_t>(b)]) / peak;
    const double bh = (height - 24 - pad) * frac;
    os << "<rect x=\"" << fmt(pad + b * bw + 1, "%.1f") << "\" y=\""
       << fmt(height - 18 - bh, "%.1f") << "\" width=\"" << fmt(bw - 2, "%.1f")
       << "\" height=\"" << fmt(bh, "%.1f") << "\" fill=\"#3572b0\"/>";
  }
  os << "<text x=\"" << pad << "\" y=\"" << height - 4
     << "\" class=\"axis\">" << fmt(lo, "%.3g") << "</text>"
     << "<text x=\"" << width - 40 << "\" y=\"" << height - 4
     << "\" class=\"axis\">" << fmt(hi, "%.3g") << "</text>";
  os << "</svg>";
  return os.str();
}

std::string summary_tile(const std::string& label, const std::string& value) {
  return "<div class=\"tile\"><div class=\"value\">" + html_escape(value) +
         "</div><div class=\"label\">" + html_escape(label) + "</div></div>\n";
}

}  // namespace

std::string render_dashboard_html(const DashboardInput& in) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n<title>wsmd · "
     << html_escape(in.title) << "</title>\n<style>\n"
     << "body { font: 14px/1.45 system-ui, sans-serif; margin: 24px;"
        " color: #1c2733; background: #fafbfc; }\n"
     << "h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }\n"
     << "h3 { font-size: 13px; margin: 0 0 2px; }\n"
     << ".tiles, .cards { display: flex; flex-wrap: wrap; gap: 12px; }\n"
     << ".tile { background: #fff; border: 1px solid #dde3ea;"
        " border-radius: 6px; padding: 10px 16px; min-width: 110px; }\n"
     << ".tile .value { font-size: 18px; font-weight: 600; }\n"
     << ".tile .label { font-size: 11px; color: #5b6b7b; }\n"
     << ".card { background: #fff; border: 1px solid #dde3ea;"
        " border-radius: 6px; padding: 10px 14px; }\n"
     << ".caption { font-size: 11px; color: #5b6b7b; margin-bottom: 4px; }\n"
     << "table { border-collapse: collapse; background: #fff; }\n"
     << "th, td { border: 1px solid #dde3ea; padding: 5px 12px;"
        " text-align: right; font-variant-numeric: tabular-nums; }\n"
     << "th { background: #eef2f6; } td:first-child, th:first-child"
        " { text-align: left; }\n"
     << "text.axis, text.nodata { font: 10px system-ui, sans-serif;"
        " fill: #5b6b7b; }\n"
     << "</style>\n</head>\n<body>\n";

  os << "<h1>wsmd run · " << html_escape(in.title) << "</h1>\n";

  // Summary tiles.
  double mean_ns_day = 0.0;
  if (!in.snapshots.empty()) {
    for (const auto& r : in.snapshots) mean_ns_day += r.ns_per_day;
    mean_ns_day /= static_cast<double>(in.snapshots.size());
  } else if (in.wall_seconds > 0.0) {
    mean_ns_day = static_cast<double>(in.total_steps) * in.dt_ps * 1e-3 /
                  in.wall_seconds * 86400.0;
  }
  os << "<div class=\"tiles\">\n"
     << summary_tile("backend", in.backend)
     << summary_tile("atoms", fmt_mag(static_cast<double>(in.atoms)))
     << summary_tile("steps", fmt_mag(static_cast<double>(in.total_steps)))
     << summary_tile("wall", fmt(in.wall_seconds, "%.3g") + " s")
     << summary_tile("ns/day", fmt_mag(mean_ns_day))
     << summary_tile("snapshots",
                     fmt_mag(static_cast<double>(in.snapshots.size())))
     << "</div>\n";

  // Snapshot time series.
  std::vector<double> ns_day, pairs, imbalance;
  std::map<std::string, std::vector<double>> span_series;
  for (std::size_t i = 0; i < in.snapshots.size(); ++i) {
    const auto& r = in.snapshots[i];
    ns_day.push_back(r.ns_per_day);
    pairs.push_back(r.pairs_per_s);
    imbalance.push_back(r.imbalance);
    for (const auto& [name, delta] : r.span_delta_s) {
      auto& series = span_series[name];
      series.resize(i, 0.0);  // pad intervals where the span was silent
      series.push_back(delta);
    }
  }
  for (auto& [name, series] : span_series) {
    series.resize(in.snapshots.size(), 0.0);
  }

  os << "<h2>Throughput over time</h2>\n<div class=\"cards\">\n"
     << spark_card("ns/day", ns_day) << spark_card("pairs/s", pairs)
     << spark_card("shard imbalance (max/mean busy)", imbalance)
     << "</div>\n";

  // Top span series by total time across the run.
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [name, series] : span_series) {
    double total = 0.0;
    for (double v : series) total += v;
    ranked.emplace_back(total, name);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  if (!ranked.empty()) {
    os << "<h2>Phase time per interval (s)</h2>\n<div class=\"cards\">\n";
    for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 6);
         ++i) {
      os << spark_card(ranked[i].second, span_series[ranked[i].second]);
    }
    os << "</div>\n";
  }

  // Measured vs modeled cost table.
  if (!in.cost.empty()) {
    os << "<h2>Measured vs modeled cost</h2>\n<table>\n"
       << "<tr><th>phase</th><th>measured s</th><th>modeled s</th>"
          "<th>ratio</th></tr>\n";
    for (const auto& row : in.cost) {
      os << "<tr><td>" << html_escape(row.phase) << "</td><td>"
         << fmt(row.measured_seconds) << "</td><td>"
         << (row.has_modeled ? fmt(row.modeled_seconds) : std::string("—"))
         << "</td><td>"
         << (row.ratio > 0.0 ? fmt(row.ratio, "%.3g") : std::string("—"))
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  // Shard load: cumulative busy/wait summed over the snapshot intervals,
  // plus the distribution of the per-interval imbalance ratio.
  std::vector<double> busy_total, wait_total;
  for (const auto& r : in.snapshots) {
    busy_total.resize(std::max(busy_total.size(), r.shard_busy_s.size()),
                      0.0);
    wait_total.resize(std::max(wait_total.size(), r.shard_wait_s.size()),
                      0.0);
    for (std::size_t i = 0; i < r.shard_busy_s.size(); ++i) {
      busy_total[i] += r.shard_busy_s[i];
    }
    for (std::size_t i = 0; i < r.shard_wait_s.size(); ++i) {
      wait_total[i] += r.shard_wait_s[i];
    }
  }
  os << "<h2>Shard load (busy vs barrier wait, s)</h2>\n"
     << "<div class=\"cards\"><div class=\"card\">";
  if (busy_total.empty()) {
    os << "<div class=\"caption\">no per-shard snapshots (single-worker "
          "backend or telemetry.snapshot off)</div>";
  } else {
    os << shard_bars(busy_total, wait_total);
  }
  os << "</div><div class=\"card\"><h3>imbalance histogram</h3>"
     << imbalance_histogram(imbalance) << "</div></div>\n";

  os << "</body>\n</html>\n";
  return os.str();
}

void write_dashboard_html(const std::string& path,
                          const DashboardInput& input) {
  std::ofstream os(path);
  WSMD_REQUIRE(os.good(), "cannot open dashboard file '" << path << "'");
  os << render_dashboard_html(input);
  WSMD_REQUIRE(os.good(), "failed writing dashboard file '" << path << "'");
}

}  // namespace wsmd::telemetry
