#pragma once

/// \file snapshot.hpp
/// Streaming interval snapshots of an armed telemetry session.
///
/// PR 6's exporters only run at end of run, so a multi-hour trajectory is
/// a black box until it finishes. A SnapshotStream turns `metrics.jsonl`
/// into an append-only time series: at a wall-clock cadence the runner
/// takes a snapshot — per-span time deltas, counter deltas, ns/day,
/// pairs/sec, and the per-shard busy/wait split since the previous
/// snapshot — and flushes it as one `{"kind": "snapshot", ...}` row.
/// `finalize()` then appends the classic end-of-run span/counter aggregate
/// rows (byte-identical to telemetry::write_metrics_jsonl), so downstream
/// tooling that only understands PR 6 rows keeps working, and a cadence of
/// zero degenerates to exactly the old file.
///
/// The stream holds the file open and flushes after every row, so a run
/// killed mid-flight still leaves every completed snapshot on disk; the
/// runner's unwind path calls finalize() to close out the aggregates even
/// on a watchdog abort.

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace wsmd::telemetry {

/// One interval row: everything is a *delta* over the interval since the
/// previous snapshot (or since the stream was created, for the first row),
/// except `step` and `t_s` which are absolute.
struct SnapshotRow {
  long long seq = 0;        ///< 0-based row index
  double t_s = 0.0;         ///< wall seconds since the stream was created
  long step = 0;            ///< engine step count at snapshot time
  long steps_delta = 0;     ///< steps completed this interval
  double wall_delta_s = 0.0;
  double ns_per_day = 0.0;  ///< simulated-time throughput this interval
  double pairs_per_s = 0.0; ///< wse.interactions delta / wall delta
  /// Per-span seconds accumulated this interval (sorted by name, zero
  /// deltas omitted).
  std::vector<std::pair<std::string, double>> span_delta_s;
  /// Counter increments this interval (sorted by name, zeros omitted).
  std::vector<std::pair<std::string, std::uint64_t>> counter_delta;
  /// Per-shard busy/wait seconds this interval (empty for backends
  /// without a worker pool).
  std::vector<double> shard_busy_s;
  std::vector<double> shard_wait_s;
  /// Max over mean of per-shard busy time this interval — 1.0 is a
  /// perfectly balanced pool, 0 when there are no shards (or no work).
  double imbalance = 0.0;
};

/// Append-only metrics.jsonl writer: interval snapshot rows while the run
/// is live, classic aggregate rows on finalize. Requires an armed (or
/// just-ended, still readable) telemetry session — deltas are computed
/// from telemetry::span_stats() / telemetry::counters().
class SnapshotStream {
 public:
  /// Opens (truncates) `path` immediately. `cadence_s <= 0` disables
  /// interval rows: snapshot_due() never fires and the finalized file is
  /// exactly what telemetry::write_metrics_jsonl would have written.
  /// `dt_ps` is the timestep used to convert steps/s into ns/day.
  SnapshotStream(std::string path, double cadence_s, double dt_ps);
  ~SnapshotStream();
  SnapshotStream(const SnapshotStream&) = delete;
  SnapshotStream& operator=(const SnapshotStream&) = delete;

  /// Has a full cadence interval elapsed since the last snapshot?
  /// `wall_s` is the caller's clock, seconds since stream creation.
  bool snapshot_due(double wall_s) const;

  /// Compute the interval deltas, append one snapshot row to the file,
  /// and retain it in rows(). `shard_busy_cum` / `shard_wait_cum` are
  /// *cumulative* per-worker seconds (engine::Engine::shard_load); the
  /// stream differentiates them like every other series.
  const SnapshotRow& take_snapshot(long step, double wall_s,
                                   const std::vector<double>& shard_busy_cum,
                                   const std::vector<double>& shard_wait_cum);

  /// Append the end-of-run span/counter aggregate rows and close the
  /// file. Idempotent — the unwind path and the normal path may both
  /// call it.
  void finalize();

  const std::vector<SnapshotRow>& rows() const { return rows_; }
  const std::string& path() const { return path_; }
  double cadence_seconds() const { return cadence_s_; }

 private:
  std::string path_;
  double cadence_s_ = 0.0;
  double dt_ps_ = 0.0;
  double last_snapshot_s_ = 0.0;
  long last_step_ = 0;
  bool finalized_ = false;
  std::ofstream os_;
  std::vector<SnapshotRow> rows_;
  /// Previous cumulative values, for differencing.
  std::vector<std::pair<std::string, double>> prev_span_total_;
  std::vector<std::pair<std::string, std::uint64_t>> prev_counter_;
  std::vector<double> prev_busy_, prev_wait_;
};

}  // namespace wsmd::telemetry
