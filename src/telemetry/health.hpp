#pragma once

/// \file health.hpp
/// Run-health watchdog: latched detectors over the thermo stream plus a
/// stalled-progress timer.
///
/// The paper's runs live for days of wall-clock; ACEMD-style
/// microsecond-barrier practice (PAPERS.md) is that such runs are babysat
/// by machines, not humans. The HealthMonitor is that machine: the
/// scenario runner feeds it every thermo sample, and four latched
/// detectors watch for the classic ways a long MD run dies quietly —
///
///   - `nan`           — non-finite PE/KE/total/T (integrator blow-up);
///   - `energy_drift`  — |E - E0| beyond a relative band during
///                       energy-conserving (`run`) stages;
///   - `temperature`   — T beyond an absolute band around the active
///                       thermostat target during thermostatted stages;
///   - `stall`         — no step completed within a timeout (watchdog
///                       thread; the only detector that fires off the
///                       runner thread).
///
/// Each detector is independently configured per deck (`health.*` keys) to
/// `off`, `warn` (log and keep running) or `abort` (the runner writes a
/// diagnostic bundle — checkpoint, thermo tail, trace, health.json — and
/// exits nonzero). Detectors latch: a run that crosses a band emits one
/// event, not one per step. The monitor also keeps the last-K thermo ring
/// the bundle's thermo tail is written from; unlike io::ThermoLogger it
/// accepts non-finite values — the whole point is capturing the rows
/// around a blow-up.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace wsmd::telemetry {

enum class HealthAction {
  kOff,    ///< detector disabled
  kWarn,   ///< emit a warning event, keep running
  kAbort,  ///< write the diagnostic bundle and terminate the run
};

/// Parse "off" / "warn" / "abort"; returns false on any other token so the
/// deck parser can raise its own file:line error.
bool parse_health_action(const std::string& token, HealthAction* out);
const char* health_action_name(HealthAction action);

/// Per-deck watchdog configuration (`health.*` keys, eager-validated by
/// the deck parser). Defaults: NaN detection warns — it costs a few
/// isfinite() per thermo row and a silent NaN run is never useful — and
/// everything else is off.
struct HealthConfig {
  HealthAction nan = HealthAction::kWarn;
  HealthAction energy_drift = HealthAction::kOff;
  /// Relative |E - E0| / max(|E0|, eps) band for energy_drift.
  double energy_band = 0.02;
  HealthAction temperature = HealthAction::kOff;
  /// Absolute |T - target| band in K for the temperature detector.
  double temperature_band_K = 250.0;
  HealthAction stall = HealthAction::kOff;
  double stall_timeout_s = 120.0;  ///< no completed step within this -> stall
  long thermo_tail = 64;           ///< bundle: last-K thermo rows kept
  std::string bundle_dir;          ///< bundle directory ("" = <name>.health)
  /// Fault drill: poison one velocity component with quiet_NaN before this
  /// 1-based step of the first stage (0 = off). Exists so decks can
  /// rehearse the NaN path deterministically end-to-end.
  long inject_nan_step = 0;

  bool any_enabled() const {
    return nan != HealthAction::kOff || energy_drift != HealthAction::kOff ||
           temperature != HealthAction::kOff || stall != HealthAction::kOff;
  }
  bool any_abort() const {
    return nan == HealthAction::kAbort ||
           energy_drift == HealthAction::kAbort ||
           temperature == HealthAction::kAbort ||
           stall == HealthAction::kAbort;
  }
};

/// One thermo sample as the runner sees it, plus the active thermostat
/// target (has_target during thermalize/equilibrate stages).
struct HealthSample {
  long step = 0;
  double pe = 0.0;
  double ke = 0.0;
  double total = 0.0;
  double temperature = 0.0;
  double target_K = 0.0;
  bool has_target = false;
};

/// A tripped detector. `value` is the observed quantity, `limit` the
/// configured threshold it crossed (both 0 where meaningless, e.g. nan).
struct HealthEvent {
  std::string detector;  ///< "nan" | "energy_drift" | "temperature" | "stall"
  std::string message;
  long step = 0;
  double value = 0.0;
  double limit = 0.0;
  HealthAction action = HealthAction::kWarn;
};

/// Thrown by the runner when an abort-configured detector trips; carries
/// the verdict and where the diagnostic bundle was written.
class HealthAbortError : public Error {
 public:
  HealthAbortError(HealthEvent event, std::string bundle_dir);
  const HealthEvent& event() const { return event_; }
  const std::string& bundle_dir() const { return bundle_dir_; }

 private:
  HealthEvent event_;
  std::string bundle_dir_;
};

class HealthMonitor {
 public:
  using EventSink = std::function<void(const HealthEvent&)>;

  /// `on_warn` fires for every warn-action event — and, for stall events,
  /// on the watchdog thread. The stall timer (when configured) starts
  /// immediately: engine construction time counts as progress only via
  /// begin_stage()/step_completed() heartbeats.
  HealthMonitor(HealthConfig config, EventSink on_warn);
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Handler for a stall event with abort action, called on the watchdog
  /// thread (the runner thread is by definition wedged). The runner
  /// installs a bundle-writer that terminates the process; tests install
  /// a capture hook.
  void set_stall_handler(EventSink handler);

  /// Start-of-stage reset: re-arms the energy-drift baseline (taken from
  /// the first sample of the stage) and refreshes the stall heartbeat.
  /// `conserves_energy` marks `run` stages (drift is meaningless while a
  /// thermostat injects energy); `thermostatted` stages check temperature
  /// against `target_K`.
  void begin_stage(bool conserves_energy, bool thermostatted,
                   double target_K);

  /// Stall heartbeat; call after every completed step.
  void step_completed();

  /// Feed one thermo sample through the latched detectors. Returns the
  /// event when an abort-action detector trips (the caller unwinds);
  /// warn-action trips go to the on_warn sink and return nullopt.
  std::optional<HealthEvent> check(const HealthSample& sample);

  /// Append to the last-K thermo ring the bundle tail is written from.
  void record(const HealthSample& sample);

  std::vector<HealthSample> tail() const;
  /// Every event emitted so far (warns and the fatal one, in trip order).
  std::vector<HealthEvent> events() const;
  const HealthConfig& config() const { return config_; }

  /// Stop and join the stall watchdog thread (idempotent; the destructor
  /// calls it).
  void stop();

 private:
  void watchdog_loop();
  std::uint64_t now_ns() const;
  std::optional<HealthEvent> emit(HealthEvent event);

  HealthConfig config_;
  EventSink on_warn_;
  EventSink stall_handler_;

  // Stage context (runner thread only).
  bool stage_conserves_ = false;
  bool stage_thermostatted_ = false;
  double stage_target_K_ = 0.0;
  bool have_baseline_ = false;
  double baseline_total_ = 0.0;

  // Latches (runner thread only, except stall).
  bool nan_latched_ = false;
  bool drift_latched_ = false;
  bool temperature_latched_ = false;

  mutable std::mutex mu_;  ///< guards events_, tail_, stall_handler_
  std::vector<HealthEvent> events_;
  std::deque<HealthSample> tail_;

  // Stall watchdog.
  std::atomic<std::uint64_t> last_beat_ns_{0};
  std::atomic<bool> stall_latched_{false};
  std::atomic<bool> stop_{false};
  std::mutex stall_mu_;
  std::condition_variable stall_cv_;
  std::thread watchdog_;
};

/// Paths recorded in health.json's "artifacts" block; empty members are
/// emitted as "" (artifact not produced).
struct HealthArtifacts {
  std::string dir;
  std::string checkpoint;
  std::string thermo_tail;
  std::string trace;
  std::string metrics;
};

/// Write the thermo-tail ring as raw CSV (header
/// step,pe_eV,ke_eV,total_eV,temperature_K). Unlike io::SeriesWriter this
/// prints non-finite values verbatim — the blow-up rows are the payload.
void write_thermo_tail_csv(const std::string& path,
                           const std::vector<HealthSample>& samples);

/// Per-rank status of a distributed (ranks:) run at bundle time: the step
/// the rank last reported completing and where its stderr capture was
/// copied inside the bundle. Empty list = not a distributed run.
struct RankStatus {
  int rank = 0;
  long last_step = 0;
  std::string log;  ///< bundle-relative or absolute stderr path ("" = none)
};

/// Write the bundle verdict: {"schema": 1, "scenario", "backend",
/// "verdict": "abort"|"warn"|"ok", "fatal": {...}|null, "events": [...],
/// "artifacts": {...}}. A non-empty `ranks` adds a "ranks" array (one
/// {"rank","last_step","log"} object per rank process) — schema 1 readers
/// that predate it ignore unknown keys.
void write_health_json(const std::string& path, const std::string& scenario,
                       const std::string& backend,
                       const std::vector<HealthEvent>& events,
                       const HealthEvent* fatal,
                       const HealthArtifacts& artifacts,
                       const std::vector<RankStatus>& ranks = {});

}  // namespace wsmd::telemetry
