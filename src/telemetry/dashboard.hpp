#pragma once

/// \file dashboard.hpp
/// Self-contained single-file HTML dashboard for one run (`wsmd report
/// --html`).
///
/// Renders the snapshot time series (ns/day, pairs/sec, imbalance, and the
/// top per-phase span series as inline SVG sparklines), the
/// measured-vs-modeled cost table, and the per-shard busy/wait +
/// imbalance histogram — everything inlined: no external stylesheet, no
/// script, no fetched asset, so the one file can be scp'd off a cluster
/// or uploaded as a CI artifact and opened anywhere. The commissioning
/// lesson from wafer-scale systems (PAPERS.md, BrainScaleS) is that this
/// glanceable layer is what keeps long runs honest.

#include <string>
#include <vector>

#include "telemetry/report.hpp"
#include "telemetry/snapshot.hpp"

namespace wsmd::telemetry {

/// Everything the dashboard renders, gathered by the caller (the runner's
/// ScenarioResult plus the cost report).
struct DashboardInput {
  std::string title;    ///< scenario name
  std::string backend;
  std::size_t atoms = 0;
  long total_steps = 0;
  double wall_seconds = 0.0;
  double dt_ps = 0.0;
  std::vector<SnapshotRow> snapshots;
  std::vector<PhaseRow> cost;  ///< measured-vs-modeled table rows
};

/// Render the full HTML document (UTF-8, single file, inline CSS + SVG
/// only — no external references of any kind).
std::string render_dashboard_html(const DashboardInput& input);

/// Render and write to `path`.
void write_dashboard_html(const std::string& path,
                          const DashboardInput& input);

}  // namespace wsmd::telemetry
