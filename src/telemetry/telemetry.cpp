#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "util/bench_json.hpp"
#include "util/error.hpp"

namespace wsmd::telemetry {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Agg {
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};

struct Event {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  int depth = 0;
};

}  // namespace

struct ThreadBuffer {
  std::string name;
  std::uint64_t session = 0;
  std::size_t order = 0;  ///< registration order, tie-break for merges
  int depth = 0;
  bool capture_trace = false;
  std::size_t max_events = 0;
  std::uint64_t dropped = 0;
  std::vector<Event> events;
  std::map<std::string, Agg> spans;
  std::map<std::string, std::uint64_t> counters;
};

namespace {

struct Global {
  std::mutex mu;
  SessionConfig cfg;
  std::atomic<std::uint64_t> session{0};  ///< 0 = no session ever begun
  std::uint64_t t0_ns = 0;                ///< session start
  /// Every buffer ever registered. Buffers are never removed (a
  /// still-open ScopedSpan may hold a raw pointer across a session
  /// boundary); readers filter on buffer.session == current.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Global& global() {
  static Global g;
  return g;
}

thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
thread_local std::string tls_name;  // empty = "main"

/// Snapshot the current session's buffers under the lock.
std::vector<std::shared_ptr<ThreadBuffer>> session_buffers() {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  const std::uint64_t session = g.session.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<ThreadBuffer>> out;
  for (const auto& tb : g.buffers) {
    if (tb->session == session) out.push_back(tb);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a->name != b->name ? a->name < b->name : a->order < b->order;
  });
  return out;
}

}  // namespace

ThreadBuffer* buffer_for_this_thread() {
  Global& g = global();
  const std::uint64_t session = g.session.load(std::memory_order_relaxed);
  ThreadBuffer* tb = tls_buffer.get();
  if (tb != nullptr && tb->session == session) return tb;
  // First record of this thread in this session: register a fresh buffer.
  auto fresh = std::make_shared<ThreadBuffer>();
  fresh->name = tls_name.empty() ? "main" : tls_name;
  fresh->session = session;
  std::lock_guard<std::mutex> lock(g.mu);
  fresh->order = g.buffers.size();
  fresh->capture_trace = g.cfg.capture_trace;
  fresh->max_events = g.cfg.max_events_per_thread;
  g.buffers.push_back(fresh);
  tls_buffer = std::move(fresh);
  return tls_buffer.get();
}

}  // namespace detail

void begin_session(const SessionConfig& config) {
  detail::Global& g = detail::global();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    g.cfg = config;
    g.buffers.clear();
    g.t0_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    g.session.fetch_add(1, std::memory_order_relaxed);
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void end_session() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  detail::tls_name = name;
  if (detail::tls_buffer) detail::tls_buffer->name = name;
}

void ScopedSpan::open(const char* name) {
  detail::ThreadBuffer* tb = detail::buffer_for_this_thread();
  name_ = name;
  buf_ = tb;
  ++tb->depth;
  start_ns_ = detail::now_ns();
}

void ScopedSpan::close() {
  const std::uint64_t end_ns = detail::now_ns();
  detail::ThreadBuffer* tb = buf_;
  const std::uint64_t dur = end_ns - start_ns_;
  --tb->depth;
  detail::Agg& agg = tb->spans[name_];
  agg.calls += 1;
  const double seconds = static_cast<double>(dur) * 1e-9;
  agg.total_seconds += seconds;
  agg.max_seconds = std::max(agg.max_seconds, seconds);
  if (tb->capture_trace) {
    if (tb->events.size() < tb->max_events) {
      tb->events.push_back({name_, start_ns_, dur, tb->depth});
    } else {
      ++tb->dropped;
      tb->counters["telemetry.dropped_events"] += 1;
    }
  }
}

void count(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  detail::buffer_for_this_thread()->counters[name] += delta;
}

void add_span_time(const char* name, double seconds, std::uint64_t calls) {
  if (!enabled()) return;
  detail::Agg& agg = detail::buffer_for_this_thread()->spans[name];
  agg.calls += calls;
  agg.total_seconds += seconds;
  agg.max_seconds = std::max(agg.max_seconds, seconds);
}

std::vector<SpanStats> span_stats() {
  std::map<std::string, SpanStats> merged;
  for (const auto& tb : detail::session_buffers()) {
    for (const auto& [name, agg] : tb->spans) {
      SpanStats& s = merged[name];
      s.name = name;
      s.calls += agg.calls;
      s.total_seconds += agg.total_seconds;
      s.max_seconds = std::max(s.max_seconds, agg.max_seconds);
    }
  }
  std::vector<SpanStats> out;
  out.reserve(merged.size());
  for (auto& [name, s] : merged) out.push_back(std::move(s));
  return out;
}

double span_total_seconds(const std::string& name) {
  double total = 0.0;
  for (const auto& tb : detail::session_buffers()) {
    const auto it = tb->spans.find(name);
    if (it != tb->spans.end()) total += it->second.total_seconds;
  }
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> counters() {
  std::map<std::string, std::uint64_t> merged;
  for (const auto& tb : detail::session_buffers()) {
    for (const auto& [name, value] : tb->counters) {
      merged[name] += value;  // wraps mod 2^64, by design
    }
  }
  return {merged.begin(), merged.end()};
}

std::vector<TraceEvent> trace_events() {
  const std::uint64_t t0 = detail::global().t0_ns;
  std::vector<TraceEvent> out;
  for (const auto& tb : detail::session_buffers()) {
    for (const auto& ev : tb->events) {
      TraceEvent e;
      e.name = ev.name;
      e.thread = tb->name;
      e.start_ns = ev.start_ns >= t0 ? ev.start_ns - t0 : 0;
      e.duration_ns = ev.duration_ns;
      e.depth = ev.depth;
      out.push_back(std::move(e));
    }
  }
  return out;
}

void write_trace_json(const std::string& path) {
  const auto events = trace_events();
  // Stable tid assignment: one tid per distinct thread name, in name order
  // (events arrive grouped by thread already).
  std::map<std::string, int> tids;
  for (const auto& e : events) tids.emplace(e.thread, 0);
  int next = 0;
  for (auto& [name, tid] : tids) tid = next++;

  std::ofstream os(path);
  WSMD_REQUIRE(os.good(), "cannot open trace file '" << path << "'");
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  bool first = true;
  const auto emit = [&os, &first](const JsonObject& obj) {
    os << (first ? "\n    " : ",\n    ") << obj.encode();
    first = false;
  };
  for (const auto& [name, tid] : tids) {
    JsonObject meta;
    meta.set("name", "thread_name")
        .set("ph", "M")
        .set("pid", 0)
        .set("tid", tid)
        .set_raw("args", JsonObject().set("name", name).encode());
    emit(meta);
  }
  for (const auto& e : events) {
    JsonObject obj;
    obj.set("name", e.name)
        .set("cat", "wsmd")
        .set("ph", "X")
        .set("pid", 0)
        .set("tid", tids[e.thread])
        .set("ts", static_cast<double>(e.start_ns) * 1e-3)
        .set("dur", static_cast<double>(e.duration_ns) * 1e-3)
        .set_raw("args", JsonObject().set("depth", e.depth).encode());
    emit(obj);
  }
  os << "\n  ]\n}\n";
  WSMD_REQUIRE(os.good(), "failed writing trace file '" << path << "'");
}

void write_metrics_jsonl(const std::string& path) {
  std::ofstream os(path);
  WSMD_REQUIRE(os.good(), "cannot open metrics file '" << path << "'");
  for (const auto& s : span_stats()) {
    JsonObject obj;
    obj.set("kind", "span")
        .set("name", s.name)
        .set("calls", static_cast<long long>(s.calls))
        .set("total_s", s.total_seconds)
        .set("mean_s", s.calls > 0
                           ? s.total_seconds / static_cast<double>(s.calls)
                           : 0.0)
        .set("max_s", s.max_seconds);
    os << obj.encode() << '\n';
  }
  for (const auto& [name, value] : counters()) {
    JsonObject obj;
    obj.set("kind", "counter").set("name", name).set(
        "value", static_cast<long long>(value));
    os << obj.encode() << '\n';
  }
  WSMD_REQUIRE(os.good(), "failed writing metrics file '" << path << "'");
}

}  // namespace wsmd::telemetry
