#pragma once

/// \file telemetry.hpp
/// Runtime telemetry: hierarchical trace spans + monotonic counters.
///
/// The paper's headline claim is a cycle-level accounting of where wafer
/// time goes (compute vs halo vs swap); `wse::CostModel` *models* those
/// costs, but nothing measured where the executed engines actually spend
/// wall-clock. This layer instruments the hot paths — the WseMd phase
/// kernels, the sharded barrier waits, the reference force sweep, the
/// scenario runner's stages and I/O — without ever touching physics:
/// spans only read clocks, counters only count, and both write to
/// per-thread buffers merged deterministically at export time.
///
/// Cost discipline: telemetry is compiled in but disabled by default, and
/// the *entire* disabled-path cost is one relaxed atomic load per
/// ScopedSpan / count() call — no allocation, no locking, no clock read.
/// Instrumentation therefore lives at phase granularity (one span per
/// kernel call), never inside per-pair loops, so the bench-gate ratio
/// floors are unaffected.
///
/// Collection runs in sessions: `begin_session()` arms the layer,
/// `end_session()` disarms it while keeping the collected data readable
/// (span_stats / counters / trace_events, and the JSON exporters) until
/// the next begin_session(). Threads register lazily on first record; a
/// thread's merge identity is its `set_thread_name()` (shard workers are
/// named "shard<i>"), so two identical runs export identical event
/// sequences — timestamps aside — regardless of scheduling.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wsmd::telemetry {

namespace detail {
extern std::atomic<bool> g_enabled;
struct ThreadBuffer;
/// The calling thread's buffer for the current session (registers it on
/// first use). Only called on the enabled path.
ThreadBuffer* buffer_for_this_thread();
}  // namespace detail

/// Is a collection session armed? One relaxed load — the entire cost every
/// instrumentation point pays when telemetry is off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

struct SessionConfig {
  /// Record individual trace events (for write_trace_json). Aggregates and
  /// counters are always collected while a session is armed.
  bool capture_trace = false;
  /// Per-thread trace-event cap; events beyond it are dropped (and counted
  /// in the "telemetry.dropped_events" counter) so a long run cannot grow
  /// without bound.
  std::size_t max_events_per_thread = 1u << 20;
};

/// Arm collection; resets any previous session's data.
void begin_session(const SessionConfig& config = {});

/// Disarm collection. Collected data stays readable until the next
/// begin_session().
void end_session();

/// Set the calling thread's merge identity (e.g. "shard0"). Threads that
/// never call this merge as "main". Safe to call any time; cheap, but not
/// free — call it once at thread start, not per record.
void set_thread_name(const std::string& name);

/// RAII span: times the enclosing scope under `name` on the calling
/// thread. `name` must outlive the session (string literals). Nesting is
/// tracked per thread (depth recorded with each trace event).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (enabled()) open(name);
  }
  ~ScopedSpan() {
    if (buf_ != nullptr) close();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void open(const char* name);
  void close();
  detail::ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

/// Bump a monotonic counter. Counters are per-thread and summed at export;
/// the sum wraps modulo 2^64 (well-defined unsigned arithmetic).
void count(const char* name, std::uint64_t delta = 1);

/// Fold externally measured time into a span aggregate without a trace
/// event — e.g. the sharded barrier-wait total, which is a derived
/// quantity (round wall minus per-worker busy time), not a scope.
void add_span_time(const char* name, double seconds, std::uint64_t calls = 1);

/// Merged per-name span aggregate (calls / total / max), summed across
/// threads, sorted by name.
struct SpanStats {
  std::string name;
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;
};
std::vector<SpanStats> span_stats();

/// Total seconds recorded under `name` (0 when the span never fired).
double span_total_seconds(const std::string& name);

/// Merged counter values, sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> counters();

/// One completed span occurrence. `start_ns` is relative to the session
/// start; `depth` is the nesting level at which the span ran (0 = top).
struct TraceEvent {
  std::string name;
  std::string thread;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  int depth = 0;
};

/// All captured trace events in deterministic order: threads sorted by
/// name, events within a thread in completion order.
std::vector<TraceEvent> trace_events();

/// Write the captured events as a chrome://tracing / Perfetto "trace
/// event" JSON document ({"traceEvents": [...]}; ph "X" complete events,
/// timestamps in microseconds).
void write_trace_json(const std::string& path);

/// Write span aggregates and counters as JSON-lines, one object per line
/// in the BENCH-envelope encoding (util/bench_json): {"kind": "span",
/// "name", "calls", "total_s", "mean_s", "max_s"} and {"kind": "counter",
/// "name", "value"}.
void write_metrics_jsonl(const std::string& path);

}  // namespace wsmd::telemetry
