#pragma once

/// \file report.hpp
/// Measured-vs-modeled cost report (the `wsmd report` table).
///
/// Joins the telemetry span totals of a finished run (telemetry.hpp)
/// against the cost-model phase breakdown the wafer engine predicts for
/// the same run (engine::ModeledPhaseCost) and prints measured/modeled
/// ratios — the validation harness the ROADMAP's modeled-vs-executed
/// items call for. A ratio far above 1 marks a phase where the host
/// execution is slower than the paper's wafer model says it should be
/// (the next optimization target); the paper's own Sec. V-G journey is
/// exactly a sequence of driving such ratios toward 1.

#include <string>
#include <vector>

#include "engine/engine.hpp"

namespace wsmd::telemetry {

/// One row of the report: a phase with the measured wall seconds (summed
/// telemetry spans) and, when the engine has a cost model, the modeled
/// seconds and the measured/modeled ratio.
struct PhaseRow {
  std::string phase;
  double measured_seconds = 0.0;
  bool has_modeled = false;
  double modeled_seconds = 0.0;
  double ratio = 0.0;  ///< measured / modeled; 0 when not computable
};

/// Build the report rows from the current telemetry session's span totals
/// and the engine's modeled breakdown. Phases: density (candidate
/// exchange + neighbor filtering), force (interactions + integration),
/// commit (fixed per-step bookkeeping: begin + commit), swap (atom-swap
/// select + commit), barrier (sharded barrier wait vs modeled halo), and
/// a total row. Distributed (ranks:) runs, which record dist.halo_* spans,
/// get a dedicated halo row joined against the modeled halo cost instead
/// (their barrier row then carries the raw lockstep wait, unmodeled). The
/// modeled total is the engine's max-cycles clock, so modeled components
/// summing below it is expected (load imbalance).
std::vector<PhaseRow> build_cost_report(
    const engine::ModeledPhaseCost& modeled);

/// Render rows as the human table `wsmd report` prints.
std::string format_cost_report(const std::vector<PhaseRow>& rows);

}  // namespace wsmd::telemetry
