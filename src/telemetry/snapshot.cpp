#include "telemetry/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/telemetry.hpp"
#include "util/bench_json.hpp"
#include "util/error.hpp"

namespace wsmd::telemetry {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string encode_double_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += format_double(values[i]);
  }
  out += "]";
  return out;
}

/// Difference two sorted (name -> cumulative) series; names present only
/// in `now` difference against zero. Cumulative series never shrink, so
/// names missing from `now` are ignored.
template <typename T, typename Out>
void diff_sorted(const std::vector<std::pair<std::string, T>>& now,
                 const std::vector<std::pair<std::string, T>>& prev,
                 std::vector<std::pair<std::string, Out>>* out) {
  std::size_t j = 0;
  for (const auto& [name, value] : now) {
    while (j < prev.size() && prev[j].first < name) ++j;
    T base{};
    if (j < prev.size() && prev[j].first == name) base = prev[j].second;
    const Out delta = static_cast<Out>(value - base);
    if (delta != Out{}) out->emplace_back(name, delta);
  }
}

}  // namespace

SnapshotStream::SnapshotStream(std::string path, double cadence_s,
                               double dt_ps)
    : path_(std::move(path)), cadence_s_(cadence_s), dt_ps_(dt_ps) {
  os_.open(path_);
  WSMD_REQUIRE(os_.good(), "cannot open metrics file '" << path_ << "'");
}

SnapshotStream::~SnapshotStream() {
  // Best-effort: a stream destroyed without finalize() (unexpected unwind)
  // still leaves a well-formed file with whatever aggregates exist now.
  if (!finalized_) {
    try {
      finalize();
    } catch (...) {
    }
  }
}

bool SnapshotStream::snapshot_due(double wall_s) const {
  if (finalized_ || cadence_s_ <= 0.0) return false;
  return wall_s - last_snapshot_s_ >= cadence_s_;
}

const SnapshotRow& SnapshotStream::take_snapshot(
    long step, double wall_s, const std::vector<double>& shard_busy_cum,
    const std::vector<double>& shard_wait_cum) {
  SnapshotRow row;
  row.seq = static_cast<long long>(rows_.size());
  row.t_s = wall_s;
  row.step = step;
  row.steps_delta = step - last_step_;
  row.wall_delta_s = wall_s - last_snapshot_s_;

  // Span / counter deltas vs the previous snapshot's cumulative values.
  std::vector<std::pair<std::string, double>> span_total;
  for (const auto& s : span_stats()) {
    span_total.emplace_back(s.name, s.total_seconds);
  }
  const auto counter_total = counters();
  diff_sorted<double, double>(span_total, prev_span_total_,
                              &row.span_delta_s);
  diff_sorted<std::uint64_t, std::uint64_t>(counter_total, prev_counter_,
                                            &row.counter_delta);

  // Throughput over the interval. ns/day: steps * dt[ps] * 1e-3 ns of
  // simulated time per wall_delta seconds, scaled to a day.
  if (row.wall_delta_s > 0.0) {
    row.ns_per_day = static_cast<double>(row.steps_delta) * dt_ps_ * 1e-3 /
                     row.wall_delta_s * 86400.0;
    for (const auto& [name, delta] : row.counter_delta) {
      if (name == "wse.interactions") {
        row.pairs_per_s = static_cast<double>(delta) / row.wall_delta_s;
      }
    }
  }

  // Per-shard busy/wait over the interval. A size change (engine swapped
  // out mid-run) resets the baseline to zero.
  if (prev_busy_.size() != shard_busy_cum.size()) prev_busy_.clear();
  if (prev_wait_.size() != shard_wait_cum.size()) prev_wait_.clear();
  prev_busy_.resize(shard_busy_cum.size(), 0.0);
  prev_wait_.resize(shard_wait_cum.size(), 0.0);
  double busy_sum = 0.0, busy_max = 0.0;
  for (std::size_t i = 0; i < shard_busy_cum.size(); ++i) {
    const double busy = shard_busy_cum[i] - prev_busy_[i];
    row.shard_busy_s.push_back(busy);
    busy_sum += busy;
    busy_max = std::max(busy_max, busy);
  }
  for (std::size_t i = 0; i < shard_wait_cum.size(); ++i) {
    row.shard_wait_s.push_back(shard_wait_cum[i] - prev_wait_[i]);
  }
  if (!row.shard_busy_s.empty() && busy_sum > 0.0) {
    row.imbalance =
        busy_max / (busy_sum / static_cast<double>(row.shard_busy_s.size()));
  }

  // Advance the baselines and flush the row.
  prev_span_total_ = std::move(span_total);
  prev_counter_ = counter_total;
  prev_busy_ = shard_busy_cum;
  prev_wait_ = shard_wait_cum;
  last_snapshot_s_ = wall_s;
  last_step_ = step;

  JsonObject spans;
  for (const auto& [name, delta] : row.span_delta_s) spans.set(name, delta);
  JsonObject counts;
  for (const auto& [name, delta] : row.counter_delta) {
    counts.set(name, static_cast<long long>(delta));
  }
  JsonObject obj;
  obj.set("kind", "snapshot")
      .set("seq", static_cast<long long>(row.seq))
      .set("t_s", row.t_s)
      .set("step", static_cast<long long>(row.step))
      .set("steps_delta", static_cast<long long>(row.steps_delta))
      .set("wall_delta_s", row.wall_delta_s)
      .set("ns_per_day", row.ns_per_day)
      .set("pairs_per_s", row.pairs_per_s)
      .set_raw("spans", spans.encode())
      .set_raw("counters", counts.encode())
      .set_raw("shard_busy_s", encode_double_array(row.shard_busy_s))
      .set_raw("shard_wait_s", encode_double_array(row.shard_wait_s))
      .set("imbalance", row.imbalance);
  os_ << obj.encode() << '\n';
  os_.flush();
  WSMD_REQUIRE(os_.good(), "failed writing metrics file '" << path_ << "'");

  rows_.push_back(std::move(row));
  return rows_.back();
}

void SnapshotStream::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Same rows, byte for byte, as telemetry::write_metrics_jsonl appends —
  // PR 6 consumers parse the finalized file unchanged.
  for (const auto& s : span_stats()) {
    JsonObject obj;
    obj.set("kind", "span")
        .set("name", s.name)
        .set("calls", static_cast<long long>(s.calls))
        .set("total_s", s.total_seconds)
        .set("mean_s", s.calls > 0
                           ? s.total_seconds / static_cast<double>(s.calls)
                           : 0.0)
        .set("max_s", s.max_seconds);
    os_ << obj.encode() << '\n';
  }
  for (const auto& [name, value] : counters()) {
    JsonObject obj;
    obj.set("kind", "counter").set("name", name).set(
        "value", static_cast<long long>(value));
    os_ << obj.encode() << '\n';
  }
  os_.flush();
  WSMD_REQUIRE(os_.good(), "failed writing metrics file '" << path_ << "'");
  os_.close();
}

}  // namespace wsmd::telemetry
