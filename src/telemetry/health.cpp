#include "telemetry/health.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/bench_json.hpp"

namespace wsmd::telemetry {

namespace {

std::string describe(const HealthEvent& e) {
  std::ostringstream os;
  os << "health: " << e.detector << " at step " << e.step << ": "
     << e.message << " [" << health_action_name(e.action) << "]";
  return os.str();
}

/// Encode one event as a JSON object (shared by the "events" array and
/// the "fatal" member of health.json).
std::string encode_event(const HealthEvent& e) {
  JsonObject obj;
  obj.set("detector", e.detector)
      .set("action", health_action_name(e.action))
      .set("step", static_cast<long long>(e.step))
      .set("value", e.value)
      .set("limit", e.limit)
      .set("message", e.message);
  return obj.encode();
}

}  // namespace

bool parse_health_action(const std::string& token, HealthAction* out) {
  if (token == "off") {
    *out = HealthAction::kOff;
  } else if (token == "warn") {
    *out = HealthAction::kWarn;
  } else if (token == "abort") {
    *out = HealthAction::kAbort;
  } else {
    return false;
  }
  return true;
}

const char* health_action_name(HealthAction action) {
  switch (action) {
    case HealthAction::kOff:
      return "off";
    case HealthAction::kWarn:
      return "warn";
    case HealthAction::kAbort:
      return "abort";
  }
  return "off";
}

HealthAbortError::HealthAbortError(HealthEvent event, std::string bundle_dir)
    : Error(describe(event) + " — diagnostic bundle in '" + bundle_dir +
            "'"),
      event_(std::move(event)),
      bundle_dir_(std::move(bundle_dir)) {}

HealthMonitor::HealthMonitor(HealthConfig config, EventSink on_warn)
    : config_(std::move(config)), on_warn_(std::move(on_warn)) {
  last_beat_ns_.store(now_ns(), std::memory_order_relaxed);
  if (config_.stall != HealthAction::kOff) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::set_stall_handler(EventSink handler) {
  std::lock_guard<std::mutex> lk(mu_);
  stall_handler_ = std::move(handler);
}

void HealthMonitor::begin_stage(bool conserves_energy, bool thermostatted,
                                double target_K) {
  stage_conserves_ = conserves_energy;
  stage_thermostatted_ = thermostatted;
  stage_target_K_ = target_K;
  have_baseline_ = false;
  last_beat_ns_.store(now_ns(), std::memory_order_relaxed);
}

void HealthMonitor::step_completed() {
  last_beat_ns_.store(now_ns(), std::memory_order_relaxed);
}

std::optional<HealthEvent> HealthMonitor::emit(HealthEvent event) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(event);
  }
  if (event.action == HealthAction::kAbort) return event;
  if (on_warn_) on_warn_(event);
  return std::nullopt;
}

std::optional<HealthEvent> HealthMonitor::check(const HealthSample& s) {
  if (config_.nan != HealthAction::kOff && !nan_latched_ &&
      (!std::isfinite(s.pe) || !std::isfinite(s.ke) ||
       !std::isfinite(s.total) || !std::isfinite(s.temperature))) {
    nan_latched_ = true;
    HealthEvent e;
    e.detector = "nan";
    e.step = s.step;
    e.action = config_.nan;
    std::ostringstream msg;
    msg << "non-finite thermo (pe=" << s.pe << " ke=" << s.ke
        << " total=" << s.total << " T=" << s.temperature << ")";
    e.message = msg.str();
    if (auto fatal = emit(std::move(e))) return fatal;
  }
  // The remaining detectors compare magnitudes; skip them on non-finite
  // rows (the nan detector owns those).
  if (!std::isfinite(s.total) || !std::isfinite(s.temperature)) {
    return std::nullopt;
  }
  if (config_.energy_drift != HealthAction::kOff && stage_conserves_) {
    if (!have_baseline_) {
      have_baseline_ = true;
      baseline_total_ = s.total;
    } else if (!drift_latched_) {
      const double scale = std::max(std::abs(baseline_total_), 1e-9);
      const double drift = std::abs(s.total - baseline_total_) / scale;
      if (drift > config_.energy_band) {
        drift_latched_ = true;
        HealthEvent e;
        e.detector = "energy_drift";
        e.step = s.step;
        e.value = drift;
        e.limit = config_.energy_band;
        e.action = config_.energy_drift;
        std::ostringstream msg;
        msg << "relative energy drift " << drift << " exceeds band "
            << config_.energy_band << " (E0=" << baseline_total_
            << " eV, E=" << s.total << " eV)";
        e.message = msg.str();
        if (auto fatal = emit(std::move(e))) return fatal;
      }
    }
  }
  if (config_.temperature != HealthAction::kOff && !temperature_latched_ &&
      stage_thermostatted_ && s.has_target) {
    const double deviation = std::abs(s.temperature - s.target_K);
    if (deviation > config_.temperature_band_K) {
      temperature_latched_ = true;
      HealthEvent e;
      e.detector = "temperature";
      e.step = s.step;
      e.value = s.temperature;
      e.limit = config_.temperature_band_K;
      e.action = config_.temperature;
      std::ostringstream msg;
      msg << "temperature " << s.temperature << " K is " << deviation
          << " K from thermostat target " << s.target_K << " K (band "
          << config_.temperature_band_K << " K)";
      e.message = msg.str();
      if (auto fatal = emit(std::move(e))) return fatal;
    }
  }
  return std::nullopt;
}

void HealthMonitor::record(const HealthSample& s) {
  std::lock_guard<std::mutex> lk(mu_);
  tail_.push_back(s);
  while (static_cast<long>(tail_.size()) > std::max<long>(config_.thermo_tail, 1)) {
    tail_.pop_front();
  }
}

std::vector<HealthSample> HealthMonitor::tail() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {tail_.begin(), tail_.end()};
}

std::vector<HealthEvent> HealthMonitor::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

void HealthMonitor::stop() {
  {
    std::lock_guard<std::mutex> lk(stall_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  stall_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

std::uint64_t HealthMonitor::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void HealthMonitor::watchdog_loop() {
  // Poll at a fraction of the timeout so short test timeouts still detect
  // promptly, clamped to [10 ms, 1 s].
  const double poll_s =
      std::min(1.0, std::max(0.01, config_.stall_timeout_s / 4.0));
  const auto poll = std::chrono::duration<double>(poll_s);
  std::unique_lock<std::mutex> lk(stall_mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    stall_cv_.wait_for(lk, poll);
    if (stop_.load(std::memory_order_relaxed)) break;
    if (stall_latched_.load(std::memory_order_relaxed)) continue;
    const std::uint64_t beat = last_beat_ns_.load(std::memory_order_relaxed);
    const double idle_s = static_cast<double>(now_ns() - beat) * 1e-9;
    if (idle_s < config_.stall_timeout_s) continue;
    stall_latched_.store(true, std::memory_order_relaxed);
    HealthEvent e;
    e.detector = "stall";
    e.value = idle_s;
    e.limit = config_.stall_timeout_s;
    e.action = config_.stall;
    std::ostringstream msg;
    msg << "no step completed for " << idle_s << " s (timeout "
        << config_.stall_timeout_s << " s)";
    e.message = msg.str();
    EventSink handler;
    {
      std::lock_guard<std::mutex> elk(mu_);
      events_.push_back(e);
      handler = stall_handler_;
    }
    if (e.action == HealthAction::kAbort) {
      // The runner thread is wedged: the abort must happen here, on the
      // watchdog thread, via the installed handler.
      if (handler) handler(e);
    } else if (on_warn_) {
      on_warn_(e);
    }
  }
}

void write_thermo_tail_csv(const std::string& path,
                           const std::vector<HealthSample>& samples) {
  std::ofstream os(path);
  WSMD_REQUIRE(os.good(), "cannot open thermo tail file '" << path << "'");
  os << "step,pe_eV,ke_eV,total_eV,temperature_K\n";
  char buf[256];
  for (const auto& s : samples) {
    std::snprintf(buf, sizeof buf, "%ld,%.10g,%.10g,%.10g,%.10g\n", s.step,
                  s.pe, s.ke, s.total, s.temperature);
    os << buf;
  }
  WSMD_REQUIRE(os.good(), "failed writing thermo tail file '" << path << "'");
}

void write_health_json(const std::string& path, const std::string& scenario,
                       const std::string& backend,
                       const std::vector<HealthEvent>& events,
                       const HealthEvent* fatal,
                       const HealthArtifacts& artifacts,
                       const std::vector<RankStatus>& ranks) {
  std::string events_json = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) events_json += ", ";
    events_json += encode_event(events[i]);
  }
  events_json += "]";

  JsonObject artifacts_obj;
  artifacts_obj.set("dir", artifacts.dir)
      .set("checkpoint", artifacts.checkpoint)
      .set("thermo_tail", artifacts.thermo_tail)
      .set("trace", artifacts.trace)
      .set("metrics", artifacts.metrics);

  JsonObject obj;
  obj.set("schema", 1)
      .set("scenario", scenario)
      .set("backend", backend)
      .set("verdict",
           fatal != nullptr ? "abort" : (events.empty() ? "ok" : "warn"))
      .set_raw("fatal", fatal != nullptr ? encode_event(*fatal) : "null")
      .set_raw("events", events_json)
      .set_raw("artifacts", artifacts_obj.encode());
  if (!ranks.empty()) {
    std::string ranks_json = "[";
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (i > 0) ranks_json += ", ";
      JsonObject r;
      r.set("rank", ranks[i].rank)
          .set("last_step", static_cast<long long>(ranks[i].last_step))
          .set("log", ranks[i].log);
      ranks_json += r.encode();
    }
    ranks_json += "]";
    obj.set_raw("ranks", ranks_json);
  }

  std::ofstream os(path);
  WSMD_REQUIRE(os.good(), "cannot open health file '" << path << "'");
  os << obj.encode() << '\n';
  WSMD_REQUIRE(os.good(), "failed writing health file '" << path << "'");
}

}  // namespace wsmd::telemetry
