#include "telemetry/report.hpp"

#include <sstream>

#include "telemetry/telemetry.hpp"
#include "util/string_util.hpp"

namespace wsmd::telemetry {

namespace {

PhaseRow make_row(std::string phase, double measured, bool has_modeled,
                  double modeled) {
  PhaseRow row;
  row.phase = std::move(phase);
  row.measured_seconds = measured;
  row.has_modeled = has_modeled;
  row.modeled_seconds = modeled;
  if (has_modeled && modeled > 0.0) row.ratio = measured / modeled;
  return row;
}

}  // namespace

std::vector<PhaseRow> build_cost_report(
    const engine::ModeledPhaseCost& modeled) {
  const bool m = modeled.valid;
  const double density = span_total_seconds("wse.density");
  const double force = span_total_seconds("wse.force");
  const double commit =
      span_total_seconds("wse.begin") + span_total_seconds("wse.commit");
  const double swap = span_total_seconds("wse.swap_select") +
                      span_total_seconds("wse.swap_commit");
  const double barrier = span_total_seconds("shard.barrier_wait");
  // Distributed (ranks:) runs measure the ghost-halo exchange directly:
  // pack/exchange/unpack spans plus a lockstep-coordination span. When
  // present, the halo measurement joins against the model's
  // halo_exchange_cycles prediction in its own row; a threads-only run
  // keeps the historical barrier-vs-halo join (the barrier wait is where
  // the halo cost surfaces for shard threads in shared memory).
  const double halo = span_total_seconds("dist.halo_pack") +
                      span_total_seconds("dist.halo_exchange") +
                      span_total_seconds("dist.halo_unpack");
  const double dist_barrier = span_total_seconds("dist.barrier");
  // Compute each rank kept running while its halos were in flight — time
  // that would otherwise sit inside halo_exchange. Reported as its own row
  // so the overlap win is visible next to the residual halo cost.
  const double overlap = span_total_seconds("dist.overlap_compute");
  const bool distributed = halo > 0.0 || dist_barrier > 0.0;

  std::vector<PhaseRow> rows;
  rows.push_back(make_row("density", density, m, modeled.density_seconds));
  rows.push_back(make_row("force", force, m, modeled.force_seconds));
  rows.push_back(make_row("commit", commit, m, modeled.fixed_seconds));
  rows.push_back(make_row("swap", swap, m, modeled.swap_seconds));
  if (distributed) {
    // Tag the halo row with the carrier that produced the measurement
    // ("halo[shm]" / "halo[socket]") — a halo number is meaningless
    // without knowing which wire it rode.
    std::string halo_label = "halo";
    if (!modeled.halo_transport.empty())
      halo_label += "[" + modeled.halo_transport + "]";
    rows.push_back(make_row(std::move(halo_label), halo, m,
                            modeled.halo_seconds));
    if (overlap > 0.0) rows.push_back(make_row("overlap", overlap, false, 0.0));
    rows.push_back(make_row("barrier", barrier + dist_barrier, false, 0.0));
  } else {
    rows.push_back(make_row("barrier", barrier, m, modeled.halo_seconds));
  }
  rows.push_back(make_row("total",
                          density + force + commit + swap + barrier + halo +
                              dist_barrier,
                          m, modeled.total_seconds));
  return rows;
}

std::string format_cost_report(const std::vector<PhaseRow>& rows) {
  std::ostringstream os;
  os << format("%-13s %14s %14s %10s\n", "phase", "measured (s)",
               "modeled (s)", "ratio");
  os << format("%-13s %14s %14s %10s\n", "-------------", "------------",
               "-----------", "-----");
  for (const PhaseRow& r : rows) {
    if (r.has_modeled) {
      os << format("%-13s %14.6f %14.6f %10.2f\n", r.phase.c_str(),
                   r.measured_seconds, r.modeled_seconds, r.ratio);
    } else {
      os << format("%-13s %14.6f %14s %10s\n", r.phase.c_str(),
                   r.measured_seconds, "-", "-");
    }
  }
  return os.str();
}

}  // namespace wsmd::telemetry
