#pragma once

/// \file shm_channel.hpp
/// Shared-memory halo transport between rank peers (`dist.transport = shm`).
///
/// For every neighbor pair the coordinator creates one POSIX shm segment
/// *before* forking, maps it MAP_SHARED, and immediately shm_unlinks it —
/// the forked ranks inherit the live mapping, and no /dev/shm entry can
/// outlive construction, however a rank dies (SIGKILL included). The
/// segment holds two single-producer / single-consumer rings, one per
/// direction, each with two fixed-size slots: halo payloads are memcpy'd
/// once by the producer and read *in place* by the consumer — zero socket
/// syscalls and zero intermediate copies on the steady-state path. The
/// AF_UNIX socket plane stays up as the control plane (handshake,
/// checkpoint scatter/gather) and as the death canary: the consumer's
/// spin-then-sleep wait polls the idle peer socket, so a dead peer
/// surfaces as PeerClosedError immediately instead of after dist.timeout.
///
/// Ring protocol (all counters are message counts, monotonic):
///   - `head` = messages published, `tail` = messages consumed; message n
///     lives in slot n % 2. The producer may run at most 2 messages ahead
///     (slot n is rewritable once tail >= n - 1); in the lockstep step
///     protocol each direction carries exactly two messages per step
///     (F' then committed state), and the coordinator only starts step
///     k+1 after every rank finished step k, so a publish never actually
///     blocks — the capacity check is a guard, not a throttle.
///   - Each slot carries its own sequence counter: 2n + 1 while message n
///     is being written, 2n + 2 once published. A consumer that sees
///     anything but 2n + 2 after acquiring message n caught a torn or
///     out-of-protocol write and fails loudly (TransportError) instead of
///     unpacking garbage.
///   - Publishes release, consumes acquire: the payload bytes a consumer
///     reads are ordered after the producer's memcpy on every
///     architecture, not just x86.
///
/// Waiting: a brief spin (catches an in-flight publish on a multi-core
/// host), then a cross-process FUTEX_WAIT on the ring's progress counter —
/// the waiter yields the CPU and is woken by the peer's publish/consume in
/// microseconds, which keeps the rings fast even when ranks share cores
/// (spinning there would starve the very peer being waited on). The
/// sleeping side registers in a waiter count so the fast path pays no
/// wake syscall. Waits honor the same `dist.timeout` deadline the socket
/// transport uses (TimeoutError past the deadline) and re-check the peer
/// socket fd between futex timeout chunks, so a dead peer surfaces as
/// PeerClosedError within milliseconds instead of at dist.timeout.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "dist/transport.hpp"

namespace wsmd::dist {

namespace shm_detail {

/// Per-direction ring control block, placed at the head of its region of
/// the shared segment. 64-byte alignment keeps the two rings' hot
/// counters on separate cache lines.
struct alignas(64) RingHeader {
  std::atomic<std::uint64_t> head;         ///< messages published
  std::atomic<std::uint64_t> tail;         ///< messages consumed
  std::atomic<std::uint64_t> slot_seq[2];  ///< 2n+1 writing, 2n+2 published
  std::atomic<std::uint64_t> slot_size[2]; ///< payload bytes in the slot
  std::atomic<std::uint16_t> slot_tag[2];  ///< Tag of the slot's message
  // Cross-process sleep/wake (see the waiting discussion in the file
  // comment): one futex word per direction of progress, bumped on every
  // publish (head_futex) / consume (tail_futex), plus a waiter count so
  // the bumping side can skip the FUTEX_WAKE syscall when nobody sleeps.
  std::atomic<std::uint32_t> head_futex;
  std::atomic<std::uint32_t> head_waiters;
  std::atomic<std::uint32_t> tail_futex;
  std::atomic<std::uint32_t> tail_waiters;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);

constexpr std::size_t kSlots = 2;

}  // namespace shm_detail

/// How a consumer waits for ring progress: bounded by the transport
/// deadline, watching the (otherwise idle) peer socket so a dead peer is
/// detected without heartbeats. `peer_fd < 0` disables the death check
/// (unit tests without a socket plane).
struct ShmWait {
  int peer_fd = -1;
  int timeout_ms = 0;
};

/// One direction of a pair segment: `publish` for the producer side,
/// `acquire`/`release` for the consumer side. A view over shared memory —
/// trivially copyable, no ownership; the mapping is owned by
/// ShmPairSegment.
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(shm_detail::RingHeader* header, std::uint8_t* slots,
          std::size_t slot_bytes)
      : header_(header), slots_(slots), slot_bytes_(slot_bytes) {}

  bool valid() const { return header_ != nullptr; }
  std::size_t slot_bytes() const { return slot_bytes_; }

  /// Producer: copy `size` bytes into the next slot and publish them under
  /// `tag`. Blocks (spin-then-sleep) only if the consumer is two messages
  /// behind — which the lockstep protocol rules out; see file comment.
  void publish(Tag tag, const void* payload, std::size_t size,
               const ShmWait& wait);

  /// Producer, zero-copy variant: claim the next slot and return its
  /// payload area, so halo values can be gathered *directly into shared
  /// memory* (written exactly once). Pair with commit_publish().
  std::uint8_t* begin_publish(const ShmWait& wait);

  /// Publish the slot claimed by begin_publish() with its final tag and
  /// payload size.
  void commit_publish(Tag tag, std::size_t size);

  /// Consumer: wait for the next message, check its tag, and return a
  /// pointer to the payload *in shared memory* (valid until release()).
  /// Unpack directly from it; there is no intermediate copy to invalidate.
  const std::uint8_t* acquire(Tag expect, std::size_t& size,
                              const ShmWait& wait);

  /// Consumer: hand the slot back to the producer after the in-place read.
  /// Verifies the slot sequence still matches — a producer that rewrote
  /// the slot early (protocol violation) is caught here, after the fact,
  /// exactly like a torn seqlock read.
  void release();

 private:
  shm_detail::RingHeader* header_ = nullptr;
  std::uint8_t* slots_ = nullptr;
  std::size_t slot_bytes_ = 0;
  std::uint64_t next_publish_ = 0;  ///< producer-local message counter
  std::uint64_t next_consume_ = 0;  ///< consumer-local message counter
  bool held_ = false;               ///< acquire() outstanding
  bool writing_ = false;            ///< begin_publish() outstanding
};

/// The two ring views one rank holds toward one peer.
struct ShmHalo {
  ShmRing send;  ///< this rank produces, the peer consumes
  ShmRing recv;  ///< the peer produces, this rank consumes
};

/// One peer pair's shared segment: created, mapped, and immediately
/// unlinked by the coordinator before fork (see file comment). Movable
/// RAII over the mapping; the last process to unmap frees the memory.
class ShmPairSegment {
 public:
  /// Create the segment for pair (rank_i, rank_j) with `slot_bytes` of
  /// payload capacity per slot (the caller sizes it to the largest halo
  /// message the pair can exchange). Throws TransportError on any shm/mmap
  /// failure. The /dev/shm entry is already gone when this returns.
  ShmPairSegment(long pid, int rank_i, int rank_j, std::size_t slot_bytes);
  ~ShmPairSegment();
  ShmPairSegment(ShmPairSegment&& other) noexcept;
  ShmPairSegment& operator=(ShmPairSegment&& other) noexcept;
  ShmPairSegment(const ShmPairSegment&) = delete;
  ShmPairSegment& operator=(const ShmPairSegment&) = delete;

  int rank_i() const { return rank_i_; }
  int rank_j() const { return rank_j_; }

  /// The ring views for one member of the pair (send toward the other).
  ShmHalo halo_for(int my_rank) const;

  /// Unmap now (a forked rank drops segments of pairs it is not part of;
  /// the two owning ranks' mappings are unaffected).
  void unmap();

 private:
  int rank_i_ = -1;
  int rank_j_ = -1;
  std::uint8_t* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t slot_bytes_ = 0;
};

}  // namespace wsmd::dist
