#include "dist/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace wsmd::dist {

namespace {

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t tag = 0;
  std::uint64_t length = 0;
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(FrameHeader) == 16);

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, 1 << 30));
}

[[noreturn]] void throw_errno(const char* op) {
  throw TransportError(std::string("dist transport: ") + op + " failed: " +
                       std::strerror(errno));
}

/// Poll for `events`; throws TimeoutError at the deadline. Returns revents.
short poll_or_throw(int fd, short events, Clock::time_point deadline,
                    const char* what) {
  for (;;) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, remaining_ms(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (rc == 0) {
      throw TimeoutError(std::string("dist transport: timed out waiting for ") +
                         what);
    }
    return p.revents;
  }
}

void validate_header(const FrameHeader& h) {
  WSMD_REQUIRE(h.magic == kMagic, "dist: bad frame magic 0x"
                                      << std::hex << h.magic
                                      << " — peer is not a wsmd rank");
  if (h.version != kProtocolVersion) {
    throw TransportError("dist: protocol version mismatch (peer " +
                         std::to_string(h.version) + ", expected " +
                         std::to_string(kProtocolVersion) + ")");
  }
}

void validate_header(const FrameHeader& h, Tag expect) {
  validate_header(h);
  if (h.tag != static_cast<std::uint16_t>(expect)) {
    throw TransportError("dist: unexpected frame tag " +
                         std::to_string(h.tag) + " (expected " +
                         std::to_string(static_cast<int>(expect)) + ")");
  }
}

}  // namespace

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ChannelPair make_channel_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  ChannelPair pair;
  pair.a = Channel(fds[0]);
  pair.b = Channel(fds[1]);
  return pair;
}

void Channel::send(Tag tag, const void* payload, std::size_t size,
                   int timeout_ms) const {
  WSMD_REQUIRE(valid(), "dist: send on closed channel");
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  FrameHeader header;
  header.tag = static_cast<std::uint16_t>(tag);
  header.length = size;

  // Send header then payload; MSG_NOSIGNAL turns a dead peer into EPIPE
  // (PeerClosedError) instead of a process-killing SIGPIPE.
  const auto write_all = [&](const std::uint8_t* data, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      poll_or_throw(fd_, POLLOUT, deadline, "send buffer space");
      const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          throw PeerClosedError("dist: peer closed during send");
        }
        throw_errno("send");
      }
      off += static_cast<std::size_t>(w);
    }
  };
  write_all(reinterpret_cast<const std::uint8_t*>(&header), sizeof(header));
  write_all(static_cast<const std::uint8_t*>(payload), size);
}

std::vector<std::uint8_t> Channel::recv(Tag expect, int timeout_ms) const {
  Tag tag;
  std::vector<std::uint8_t> payload = recv_any(tag, timeout_ms);
  if (tag != expect) {
    throw TransportError("dist: unexpected frame tag " +
                         std::to_string(static_cast<int>(tag)) +
                         " (expected " +
                         std::to_string(static_cast<int>(expect)) + ")");
  }
  return payload;
}

std::vector<std::uint8_t> Channel::recv_any(Tag& tag, int timeout_ms) const {
  WSMD_REQUIRE(valid(), "dist: recv on closed channel");
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);

  const auto read_all = [&](std::uint8_t* data, std::size_t n,
                            const char* what) {
    std::size_t off = 0;
    while (off < n) {
      poll_or_throw(fd_, POLLIN, deadline, what);
      const ssize_t r = ::recv(fd_, data + off, n - off, 0);
      if (r < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        if (errno == ECONNRESET) {
          throw PeerClosedError("dist: peer reset during recv");
        }
        throw_errno("recv");
      }
      if (r == 0) throw PeerClosedError("dist: peer closed (EOF)");
      off += static_cast<std::size_t>(r);
    }
  };

  FrameHeader header;
  read_all(reinterpret_cast<std::uint8_t*>(&header), sizeof(header),
           "frame header");
  validate_header(header);
  tag = static_cast<Tag>(header.tag);
  std::vector<std::uint8_t> payload(header.length);
  read_all(payload.data(), payload.size(), "frame payload");
  return payload;
}

std::vector<std::uint8_t> Channel::exchange(Tag tag, const void* out,
                                            std::size_t out_size,
                                            int timeout_ms) const {
  WSMD_REQUIRE(valid(), "dist: exchange on closed channel");
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);

  // Outbound stream: header + payload, driven as write space appears.
  FrameHeader out_header;
  out_header.tag = static_cast<std::uint16_t>(tag);
  out_header.length = out_size;
  const auto* out_bytes = static_cast<const std::uint8_t*>(out);
  std::size_t sent_header = 0, sent_payload = 0;

  // Inbound stream: header first, then the payload it announces.
  FrameHeader in_header;
  std::size_t recv_header = 0, recv_payload = 0;
  std::vector<std::uint8_t> in_payload;
  bool header_done = false;

  bool send_done = false;
  bool recv_done = false;

  while (!send_done || !recv_done) {
    short events = 0;
    if (!send_done) events |= POLLOUT;
    if (!recv_done) events |= POLLIN;
    const short revents =
        poll_or_throw(fd_, events, deadline, "halo exchange progress");

    if (!send_done && (revents & (POLLOUT | POLLERR))) {
      const std::uint8_t* data;
      std::size_t n, off;
      if (sent_header < sizeof(out_header)) {
        data = reinterpret_cast<const std::uint8_t*>(&out_header);
        n = sizeof(out_header);
        off = sent_header;
      } else {
        data = out_bytes;
        n = out_size;
        off = sent_payload;
      }
      // MSG_DONTWAIT: a blocking send() would queue the *whole* remainder
      // and stall until the peer drains it — exactly the write-write
      // deadlock this loop exists to avoid.
      const ssize_t w =
          ::send(fd_, data + off, n - off, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (w < 0) {
        if (errno != EINTR && errno != EAGAIN) {
          if (errno == EPIPE || errno == ECONNRESET) {
            throw PeerClosedError("dist: peer closed during halo exchange");
          }
          throw_errno("send");
        }
      } else if (sent_header < sizeof(out_header)) {
        sent_header += static_cast<std::size_t>(w);
      } else {
        sent_payload += static_cast<std::size_t>(w);
      }
      send_done = sent_header == sizeof(out_header) && sent_payload == out_size;
    }

    if (!recv_done && (revents & (POLLIN | POLLHUP | POLLERR))) {
      std::uint8_t* data;
      std::size_t n, off;
      if (!header_done) {
        data = reinterpret_cast<std::uint8_t*>(&in_header);
        n = sizeof(in_header);
        off = recv_header;
      } else {
        data = in_payload.data();
        n = in_payload.size();
        off = recv_payload;
      }
      const ssize_t r = ::recv(fd_, data + off, n - off, MSG_DONTWAIT);
      if (r < 0) {
        if (errno != EINTR && errno != EAGAIN) {
          if (errno == ECONNRESET) {
            throw PeerClosedError("dist: peer reset during halo exchange");
          }
          throw_errno("recv");
        }
      } else if (r == 0) {
        throw PeerClosedError("dist: peer closed during halo exchange (EOF)");
      } else if (!header_done) {
        recv_header += static_cast<std::size_t>(r);
        if (recv_header == sizeof(in_header)) {
          validate_header(in_header, tag);
          in_payload.resize(in_header.length);
          header_done = true;
          recv_done = in_payload.empty();
        }
      } else {
        recv_payload += static_cast<std::size_t>(r);
        recv_done = recv_payload == in_payload.size();
      }
    }
  }
  return in_payload;
}

/// Per-fd exchange state — one instance of the same machine
/// Channel::exchange runs inline, but progressed a slice at a time so many
/// fds can advance under one poll.
struct MultiExchange::Op {
  int fd = -1;
  Tag tag = Tag::kHello;
  FrameHeader out_header;
  const std::uint8_t* out_bytes = nullptr;
  std::size_t out_size = 0;
  std::size_t sent_header = 0, sent_payload = 0;
  FrameHeader in_header;
  std::size_t recv_header = 0, recv_payload = 0;
  std::vector<std::uint8_t> in_payload;
  bool header_done = false;
  bool send_done = false;
  bool recv_done = false;

  bool done() const { return send_done && recv_done; }

  void progress(short revents) {
    if (!send_done && (revents & (POLLOUT | POLLERR))) {
      const std::uint8_t* data;
      std::size_t n, off;
      if (sent_header < sizeof(out_header)) {
        data = reinterpret_cast<const std::uint8_t*>(&out_header);
        n = sizeof(out_header);
        off = sent_header;
      } else {
        data = out_bytes;
        n = out_size;
        off = sent_payload;
      }
      const ssize_t w =
          ::send(fd, data + off, n - off, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (w < 0) {
        if (errno != EINTR && errno != EAGAIN) {
          if (errno == EPIPE || errno == ECONNRESET) {
            throw PeerClosedError("dist: peer closed during halo exchange");
          }
          throw_errno("send");
        }
      } else if (sent_header < sizeof(out_header)) {
        sent_header += static_cast<std::size_t>(w);
      } else {
        sent_payload += static_cast<std::size_t>(w);
      }
      send_done = sent_header == sizeof(out_header) && sent_payload == out_size;
    }

    if (!recv_done && (revents & (POLLIN | POLLHUP | POLLERR))) {
      std::uint8_t* data;
      std::size_t n, off;
      if (!header_done) {
        data = reinterpret_cast<std::uint8_t*>(&in_header);
        n = sizeof(in_header);
        off = recv_header;
      } else {
        data = in_payload.data();
        n = in_payload.size();
        off = recv_payload;
      }
      const ssize_t r = ::recv(fd, data + off, n - off, MSG_DONTWAIT);
      if (r < 0) {
        if (errno != EINTR && errno != EAGAIN) {
          if (errno == ECONNRESET) {
            throw PeerClosedError("dist: peer reset during halo exchange");
          }
          throw_errno("recv");
        }
      } else if (r == 0) {
        throw PeerClosedError("dist: peer closed during halo exchange (EOF)");
      } else if (!header_done) {
        recv_header += static_cast<std::size_t>(r);
        if (recv_header == sizeof(in_header)) {
          validate_header(in_header, tag);
          in_payload.resize(in_header.length);
          header_done = true;
          recv_done = in_payload.empty();
        }
      } else {
        recv_payload += static_cast<std::size_t>(r);
        recv_done = recv_payload == in_payload.size();
      }
    }
  }
};

MultiExchange::MultiExchange() = default;
MultiExchange::~MultiExchange() = default;
MultiExchange::MultiExchange(MultiExchange&&) noexcept = default;
MultiExchange& MultiExchange::operator=(MultiExchange&&) noexcept = default;

void MultiExchange::add(const Channel& ch, Tag tag, const void* out,
                        std::size_t out_size) {
  WSMD_REQUIRE(ch.valid(), "dist: exchange on closed channel");
  Op op;
  op.fd = ch.fd();
  op.tag = tag;
  op.out_header.tag = static_cast<std::uint16_t>(tag);
  op.out_header.length = out_size;
  op.out_bytes = static_cast<const std::uint8_t*>(out);
  op.out_size = out_size;
  ops_.push_back(std::move(op));
}

bool MultiExchange::post() {
  std::vector<pollfd> fds;
  fds.reserve(ops_.size());
  std::vector<std::size_t> idx;
  idx.reserve(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    if (op.done()) continue;
    short events = 0;
    if (!op.send_done) events |= POLLOUT;
    if (!op.recv_done) events |= POLLIN;
    fds.push_back(pollfd{op.fd, events, 0});
    idx.push_back(i);
  }
  if (fds.empty()) return true;
  const int rc = ::poll(fds.data(), fds.size(), 0);
  if (rc < 0) {
    if (errno == EINTR) return false;
    throw_errno("poll");
  }
  if (rc > 0) {
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents != 0) ops_[idx[k]].progress(fds[k].revents);
    }
  }
  bool all = true;
  for (const Op& op : ops_) all = all && op.done();
  return all;
}

std::vector<std::vector<std::uint8_t>> MultiExchange::drain(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const Op& op = ops_[i];
      if (op.done()) continue;
      short events = 0;
      if (!op.send_done) events |= POLLOUT;
      if (!op.recv_done) events |= POLLIN;
      fds.push_back(pollfd{op.fd, events, 0});
      idx.push_back(i);
    }
    if (fds.empty()) break;
    const int rc = ::poll(fds.data(), fds.size(), remaining_ms(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (rc == 0) {
      throw TimeoutError(
          "dist transport: timed out waiting for halo exchange progress");
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents != 0) ops_[idx[k]].progress(fds[k].revents);
    }
  }
  std::vector<std::vector<std::uint8_t>> results;
  results.reserve(ops_.size());
  for (Op& op : ops_) results.push_back(std::move(op.in_payload));
  ops_.clear();
  return results;
}

}  // namespace wsmd::dist
