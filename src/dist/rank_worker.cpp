#include "dist/rank_worker.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace wsmd::dist {

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Idle wait for the next coordinator command. Effectively unbounded — a
/// vanished coordinator wakes the rank with EOF, not a timeout.
constexpr int kCommandTimeoutMs = 7 * 24 * 3600 * 1000;

}  // namespace

RankWorker::RankWorker(core::WseMd& md, RankWorkerConfig config,
                       Channel control, std::vector<std::pair<int, Channel>> peers)
    : md_(md),
      config_(config),
      control_(std::move(control)),
      peers_(std::move(peers)),
      strips_(row_strips(md.mapping().grid_width(), md.mapping().grid_height(),
                         config.world)),
      strip_(strips_[static_cast<std::size_t>(config.rank)]),
      pool_(config.threads > 0 ? config.threads : 1) {}

std::vector<core::ShardRect> RankWorker::sub_strips() const {
  const int h = strip_.y1 - strip_.y0;
  auto subs = row_strips(strip_.x1 - strip_.x0, h > 0 ? h : 0, pool_.size());
  for (auto& s : subs) {
    s.y0 += strip_.y0;
    s.y1 += strip_.y0;
  }
  return subs;
}

Channel* RankWorker::peer_channel(int rank) {
  for (auto& [r, ch] : peers_) {
    if (r == rank) return &ch;
  }
  return nullptr;
}

void RankWorker::handshake() {
  Handshake hello;
  hello.rank = static_cast<std::uint16_t>(config_.rank);
  hello.world = static_cast<std::uint16_t>(config_.world);
  hello.atoms = md_.atom_count();
  hello.grid_width = md_.mapping().grid_width();
  hello.grid_height = md_.mapping().grid_height();
  hello.b = md_.b();
  control_.send_pod(Tag::kHello, hello, config_.peer_timeout_ms);
  const auto ack =
      control_.recv_pod<Handshake>(Tag::kHelloAck, config_.peer_timeout_ms);
  WSMD_REQUIRE(ack.rank == hello.rank && ack.world == hello.world &&
                   ack.atoms == hello.atoms,
               "dist: handshake echo mismatch on rank " << config_.rank);
}

void RankWorker::run() {
  try {
    handshake();
    for (;;) {
      const auto idle_start = Clock::now();
      Tag tag;
      std::vector<std::uint8_t> payload;
      try {
        payload = control_.recv_any(tag, kCommandTimeoutMs);
      } catch (const PeerClosedError&) {
        // Coordinator gone (abort, crash, _Exit watchdog path): a quiet
        // exit, not an error — the rank has nobody left to report to.
        std::_Exit(0);
      }
      barrier_s_ += since(idle_start);

      switch (tag) {
        case Tag::kStep:
          do_step();
          break;
        case Tag::kThermalize: {
          Unpacker u(payload);
          const auto cmd = u.get<ThermalizeCmd>();
          Rng rng;
          rng.set_state(cmd.rng);
          md_.thermalize(cmd.temperature_K, rng);
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kGatherState: {
          // Owned atoms in row-major core order; the coordinator walks the
          // same rows of its (swap-synchronized) mapping to place them.
          const auto atoms =
              atoms_in_rows(md_.mapping(), strip_.y0, strip_.y1);
          std::vector<float> values;
          values.reserve(atoms.size() * 6);
          for (const std::uint32_t a : atoms) {
            const Vec3f r = md_.positions_f32().get(a);
            const Vec3f v = md_.velocities_f32().get(a);
            values.push_back(r.x);
            values.push_back(r.y);
            values.push_back(r.z);
            values.push_back(v.x);
            values.push_back(v.y);
            values.push_back(v.z);
          }
          Packer p;
          p.put_array(values.data(), values.size());
          control_.send(Tag::kStateSlice, p.bytes().data(), p.bytes().size(),
                        config_.peer_timeout_ms);
          break;
        }
        case Tag::kRestore: {
          Unpacker u(payload);
          md_.restore_state(unpack_saved_state(u));
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kSetPositions: {
          Unpacker u(payload);
          md_.set_positions(u.get_array<Vec3d>());
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kSetVelocities: {
          Unpacker u(payload);
          md_.set_velocities(u.get_array<Vec3d>());
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kEvalPe:
          do_eval_pe();
          break;
        case Tag::kKinetic:
          control_.send_pod(Tag::kKePartial,
                            KineticPartial{md_.kinetic_energy_region(strip_)},
                            config_.peer_timeout_ms);
          break;
        case Tag::kShutdown:
          control_.send_pod(Tag::kBye, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          std::_Exit(0);
        default:
          WSMD_REQUIRE(false, "dist: rank " << config_.rank
                                            << " got unexpected command tag "
                                            << static_cast<int>(tag));
      }
    }
  } catch (const std::exception& e) {
    // Peer death, timeout, or a physics precondition: report on stderr
    // (captured into the rank's scratch log) and exit nonzero so the
    // failure cascades to the coordinator as EOFs.
    std::fprintf(stderr, "[wsmd rank %d] fatal: %s\n", config_.rank, e.what());
    std::_Exit(1);
  }
  std::_Exit(1);  // unreachable
}

void RankWorker::exchange_fprime() {
  const int b = md_.b();
  const auto pairs = halo_pairs(strips_, b);
  std::vector<float>& fprime = md_.fprime();
  for (const auto& [i, j] : pairs) {
    if (i != config_.rank && j != config_.rank) continue;
    const int other = i == config_.rank ? j : i;
    Channel* ch = peer_channel(other);
    WSMD_REQUIRE(ch != nullptr, "dist: no channel to peer rank " << other);

    const RowSpan out_span = halo_rows(strips_, config_.rank, other, b);
    const RowSpan in_span = halo_rows(strips_, other, config_.rank, b);

    const auto pack_start = Clock::now();
    const auto out_atoms =
        atoms_in_rows(md_.mapping(), out_span.lo, out_span.hi);
    std::vector<float> out_values(out_atoms.size());
    for (std::size_t k = 0; k < out_atoms.size(); ++k) {
      out_values[k] = fprime[out_atoms[k]];
    }
    Packer p;
    p.put_array(out_values.data(), out_values.size());
    pack_s_ += since(pack_start);

    const auto wire_start = Clock::now();
    const auto in_bytes = ch->exchange(Tag::kHaloFprime, p.bytes().data(),
                                       p.bytes().size(),
                                       config_.peer_timeout_ms);
    exchange_s_ += since(wire_start);

    const auto unpack_start = Clock::now();
    Unpacker u(in_bytes);
    const auto in_values = u.get_array<float>();
    const auto in_atoms = atoms_in_rows(md_.mapping(), in_span.lo, in_span.hi);
    WSMD_REQUIRE(in_values.size() == in_atoms.size(),
                 "dist: F' halo size mismatch from rank "
                     << other << " (" << in_values.size() << " vs "
                     << in_atoms.size() << ")");
    for (std::size_t k = 0; k < in_atoms.size(); ++k) {
      fprime[in_atoms[k]] = in_values[k];
    }
    unpack_s_ += since(unpack_start);
  }
}

void RankWorker::exchange_state() {
  // One row of slack over the candidate radius: an atom-swap migrates
  // atoms by at most one core, so refreshing b+1 rows guarantees no
  // post-swap ghost within b is ever stale.
  const int radius = md_.b() + 1;
  const auto pairs = halo_pairs(strips_, radius);
  for (const auto& [i, j] : pairs) {
    if (i != config_.rank && j != config_.rank) continue;
    const int other = i == config_.rank ? j : i;
    Channel* ch = peer_channel(other);
    WSMD_REQUIRE(ch != nullptr, "dist: no channel to peer rank " << other);

    const RowSpan out_span = halo_rows(strips_, config_.rank, other, radius);
    const RowSpan in_span = halo_rows(strips_, other, config_.rank, radius);

    const auto pack_start = Clock::now();
    const auto out_atoms =
        atoms_in_rows(md_.mapping(), out_span.lo, out_span.hi);
    std::vector<float> out_values;
    out_values.reserve(out_atoms.size() * 6);
    for (const std::uint32_t a : out_atoms) {
      const Vec3f r = md_.positions_f32().get(a);
      const Vec3f v = md_.velocities_f32().get(a);
      out_values.push_back(r.x);
      out_values.push_back(r.y);
      out_values.push_back(r.z);
      out_values.push_back(v.x);
      out_values.push_back(v.y);
      out_values.push_back(v.z);
    }
    Packer p;
    p.put_array(out_values.data(), out_values.size());
    pack_s_ += since(pack_start);

    const auto wire_start = Clock::now();
    const auto in_bytes = ch->exchange(Tag::kHaloState, p.bytes().data(),
                                       p.bytes().size(),
                                       config_.peer_timeout_ms);
    exchange_s_ += since(wire_start);

    const auto unpack_start = Clock::now();
    Unpacker u(in_bytes);
    const auto in_values = u.get_array<float>();
    const auto in_atoms = atoms_in_rows(md_.mapping(), in_span.lo, in_span.hi);
    WSMD_REQUIRE(in_values.size() == in_atoms.size() * 6,
                 "dist: state halo size mismatch from rank "
                     << other << " (" << in_values.size() << " vs "
                     << in_atoms.size() * 6 << ")");
    for (std::size_t k = 0; k < in_atoms.size(); ++k) {
      const std::uint32_t a = in_atoms[k];
      const float* v6 = in_values.data() + k * 6;
      md_.positions_f32().set(a, Vec3f{v6[0], v6[1], v6[2]});
      md_.velocities_f32().set(a, Vec3f{v6[3], v6[4], v6[5]});
    }
    unpack_s_ += since(unpack_start);
  }
}

void RankWorker::do_step() {
  if (config_.kill_rank == config_.rank &&
      md_.step_count() + 1 == config_.kill_step) {
    // Dead-rank drill (scenarios/health decks): die abruptly mid-step, the
    // way an OOM-killed or crashed rank would.
    std::fprintf(stderr, "[wsmd rank %d] drill: killing rank at step %ld\n",
                 config_.rank, config_.kill_step);
    std::_Exit(9);
  }

  const auto subs = sub_strips();
  auto t = Clock::now();
  md_.begin_step_region(ws_);
  pool_.run([&](int k) {
    md_.density_phase(subs[static_cast<std::size_t>(k)], ws_);
  });
  busy_s_ += since(t);

  exchange_fprime();

  t = Clock::now();
  pool_.run([&](int k) {
    md_.force_phase(subs[static_cast<std::size_t>(k)], ws_);
  });
  core::WseMd::RegionEnergy pe;
  const bool swap_now = md_.commit_region(strip_, ws_, pe);
  // Reduce before any swap perturbs the strip's atom set: the workspace
  // slots of an atom migrating in belong to its previous owner.
  const auto acc = md_.reduce_region_raw(strip_, ws_);
  busy_s_ += since(t);

  // Fresh committed state to every halo *before* the swap phase reads
  // boundary positions — and at radius b+1, so atoms that migrate across
  // the strip boundary this step carry valid state with them.
  exchange_state();

  std::size_t applied = 0;
  if (swap_now) {
    t = Clock::now();
    pool_.run([&](int k) {
      md_.swap_select(subs[static_cast<std::size_t>(k)], ws_.partner);
    });
    busy_s_ += since(t);

    // Gather this strip's partner slots (a contiguous row-major slice of
    // the core array), receive the globally merged array, and apply the
    // same deterministic serial commit every other rank applies.
    const int w = md_.mapping().grid_width();
    const auto lo = static_cast<std::size_t>(strip_.y0) *
                    static_cast<std::size_t>(w);
    const auto hi = static_cast<std::size_t>(strip_.y1) *
                    static_cast<std::size_t>(w);
    std::vector<std::int32_t> slice(ws_.partner.begin() +
                                        static_cast<std::ptrdiff_t>(lo),
                                    ws_.partner.begin() +
                                        static_cast<std::ptrdiff_t>(hi));
    Packer p;
    p.put_array(slice.data(), slice.size());
    control_.send(Tag::kSwapPartners, p.bytes().data(), p.bytes().size(),
                  config_.peer_timeout_ms);
    const auto wait_start = Clock::now();
    const auto merged_bytes =
        control_.recv(Tag::kSwapMerged, config_.peer_timeout_ms);
    barrier_s_ += since(wait_start);

    t = Clock::now();
    Unpacker u(merged_bytes);
    const auto merged = u.get_array<std::int32_t>();
    std::vector<int> partner(merged.begin(), merged.end());
    applied = md_.swap_commit(partner);
    busy_s_ += since(t);
  }

  t = Clock::now();
  StepRecord rec;
  rec.step = md_.step_count();
  rec.pe_embed = pe.embed;
  rec.pe_pair = pe.pair;
  rec.kinetic = md_.kinetic_energy_region(strip_);
  rec.candidate_total = acc.candidate_total;
  rec.interaction_total = acc.interaction_total;
  rec.cycles_sum = acc.cycles_sum;
  rec.cycles_sq_sum = acc.cycles_sq_sum;
  rec.cycles_max = acc.cycles_max;
  rec.occupied = acc.occupied;
  rec.swaps_applied = applied;
  rec.swapped = swap_now ? 1 : 0;
  busy_s_ += since(t);
  rec.busy_seconds = busy_s_;
  rec.halo_pack_seconds = pack_s_;
  rec.halo_exchange_seconds = exchange_s_;
  rec.halo_unpack_seconds = unpack_s_;
  rec.barrier_seconds = barrier_s_;
  control_.send_pod(Tag::kStepDone, rec, config_.peer_timeout_ms);
}

void RankWorker::do_eval_pe() {
  // Energy of the *current* configuration (construction, post-restore,
  // post-set_positions): run the density/force phases over the strip
  // without committing anything. Requires valid halo positions, which
  // every full-state broadcast guarantees.
  const auto subs = sub_strips();
  md_.begin_step_region(ws_);
  pool_.run([&](int k) {
    md_.density_phase(subs[static_cast<std::size_t>(k)], ws_);
  });
  exchange_fprime();
  pool_.run([&](int k) {
    md_.force_phase(subs[static_cast<std::size_t>(k)], ws_);
  });
  const auto pe = md_.reduce_region_energy(strip_, ws_);
  control_.send_pod(Tag::kPePartial, EnergyPartial{pe.embed, pe.pair},
                    config_.peer_timeout_ms);
}

}  // namespace wsmd::dist
