#include "dist/rank_worker.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace wsmd::dist {

namespace {

using Clock = std::chrono::steady_clock;

double since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Idle wait for the next coordinator command. Effectively unbounded — a
/// vanished coordinator wakes the rank with EOF, not a timeout.
constexpr int kCommandTimeoutMs = 7 * 24 * 3600 * 1000;

}  // namespace

RankWorker::RankWorker(core::WseMd& md, RankWorkerConfig config,
                       Channel control, std::vector<PeerLink> peers)
    : md_(md),
      config_(config),
      control_(std::move(control)),
      peers_(std::move(peers)),
      strips_(row_strips(md.mapping().grid_width(), md.mapping().grid_height(),
                         config.world)),
      strip_(strips_[static_cast<std::size_t>(config.rank)]),
      pool_(config.threads > 0 ? config.threads : 1) {}

std::vector<core::ShardRect> RankWorker::sub_strips() const {
  const int h = strip_.y1 - strip_.y0;
  auto subs = row_strips(strip_.x1 - strip_.x0, h > 0 ? h : 0, pool_.size());
  for (auto& s : subs) {
    s.y0 += strip_.y0;
    s.y1 += strip_.y0;
  }
  return subs;
}

template <typename Phase>
void RankWorker::for_region(const core::ShardRect& rect, Phase&& phase) {
  if (rect.empty()) return;
  auto subs =
      row_strips(rect.x1 - rect.x0, rect.y1 - rect.y0, pool_.size());
  for (auto& s : subs) {
    s.x0 += rect.x0;
    s.x1 += rect.x0;
    s.y0 += rect.y0;
    s.y1 += rect.y0;
  }
  pool_.run([&](int k) { phase(subs[static_cast<std::size_t>(k)]); });
}

PeerLink* RankWorker::peer_link(int rank) {
  for (auto& link : peers_) {
    if (link.rank == rank) return &link;
  }
  return nullptr;
}

void RankWorker::handshake() {
  Handshake hello;
  hello.rank = static_cast<std::uint16_t>(config_.rank);
  hello.world = static_cast<std::uint16_t>(config_.world);
  hello.atoms = md_.atom_count();
  hello.grid_width = md_.mapping().grid_width();
  hello.grid_height = md_.mapping().grid_height();
  hello.b = md_.b();
  control_.send_pod(Tag::kHello, hello, config_.peer_timeout_ms);
  const auto ack =
      control_.recv_pod<Handshake>(Tag::kHelloAck, config_.peer_timeout_ms);
  WSMD_REQUIRE(ack.rank == hello.rank && ack.world == hello.world &&
                   ack.atoms == hello.atoms,
               "dist: handshake echo mismatch on rank " << config_.rank);
}

void RankWorker::run() {
  try {
    handshake();
    for (;;) {
      const auto idle_start = Clock::now();
      Tag tag;
      std::vector<std::uint8_t> payload;
      try {
        payload = control_.recv_any(tag, kCommandTimeoutMs);
      } catch (const PeerClosedError&) {
        // Coordinator gone (abort, crash, _Exit watchdog path): a quiet
        // exit, not an error — the rank has nobody left to report to.
        std::_Exit(0);
      }
      barrier_s_ += since(idle_start);

      switch (tag) {
        case Tag::kStep:
          do_step();
          break;
        case Tag::kThermalize: {
          Unpacker u(payload);
          const auto cmd = u.get<ThermalizeCmd>();
          Rng rng;
          rng.set_state(cmd.rng);
          md_.thermalize(cmd.temperature_K, rng);
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kGatherState: {
          // Owned atoms in row-major core order; the coordinator walks the
          // same rows of its (swap-synchronized) mapping to place them.
          const auto atoms =
              atoms_in_rows(md_.mapping(), strip_.y0, strip_.y1);
          std::vector<float> values;
          values.reserve(atoms.size() * 6);
          for (const std::uint32_t a : atoms) {
            const Vec3f r = md_.positions_f32().get(a);
            const Vec3f v = md_.velocities_f32().get(a);
            values.push_back(r.x);
            values.push_back(r.y);
            values.push_back(r.z);
            values.push_back(v.x);
            values.push_back(v.y);
            values.push_back(v.z);
          }
          Packer p;
          p.put_array(values.data(), values.size());
          control_.send(Tag::kStateSlice, p.bytes().data(), p.bytes().size(),
                        config_.peer_timeout_ms);
          break;
        }
        case Tag::kRestore: {
          Unpacker u(payload);
          md_.restore_state(unpack_saved_state(u));
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kSetPositions: {
          Unpacker u(payload);
          md_.set_positions(u.get_array<Vec3d>());
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kSetVelocities: {
          Unpacker u(payload);
          md_.set_velocities(u.get_array<Vec3d>());
          control_.send_pod(Tag::kOk, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          break;
        }
        case Tag::kEvalPe:
          do_eval_pe();
          break;
        case Tag::kKinetic:
          control_.send_pod(Tag::kKePartial,
                            KineticPartial{md_.kinetic_energy_region(strip_)},
                            config_.peer_timeout_ms);
          break;
        case Tag::kShutdown:
          control_.send_pod(Tag::kBye, Ack{md_.step_count()},
                            config_.peer_timeout_ms);
          std::_Exit(0);
        default:
          WSMD_REQUIRE(false, "dist: rank " << config_.rank
                                            << " got unexpected command tag "
                                            << static_cast<int>(tag));
      }
    }
  } catch (const std::exception& e) {
    // Peer death, timeout, or a physics precondition: report on stderr
    // (captured into the rank's scratch log) and exit nonzero so the
    // failure cascades to the coordinator as EOFs.
    std::fprintf(stderr, "[wsmd rank %d] fatal: %s\n", config_.rank, e.what());
    std::_Exit(1);
  }
  std::_Exit(1);  // unreachable
}

std::size_t RankWorker::gather_halo(Tag tag,
                                    const std::vector<std::uint32_t>& atoms,
                                    std::uint8_t* dst) {
  if (tag == Tag::kHaloFprime) {
    const std::vector<float>& fprime = md_.fprime();
    for (std::size_t k = 0; k < atoms.size(); ++k) {
      const float v = fprime[atoms[k]];
      std::memcpy(dst + k * sizeof(float), &v, sizeof(float));
    }
    return atoms.size() * sizeof(float);
  }
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    const Vec3f r = md_.positions_f32().get(atoms[k]);
    const Vec3f v = md_.velocities_f32().get(atoms[k]);
    const float v6[6] = {r.x, r.y, r.z, v.x, v.y, v.z};
    std::memcpy(dst + k * sizeof(v6), v6, sizeof(v6));
  }
  return atoms.size() * 6 * sizeof(float);
}

void RankWorker::scatter_halo(Tag tag,
                              const std::vector<std::uint32_t>& atoms,
                              const std::uint8_t* src) {
  if (tag == Tag::kHaloFprime) {
    std::vector<float>& fprime = md_.fprime();
    for (std::size_t k = 0; k < atoms.size(); ++k) {
      float v;
      std::memcpy(&v, src + k * sizeof(float), sizeof(float));
      fprime[atoms[k]] = v;
    }
    return;
  }
  for (std::size_t k = 0; k < atoms.size(); ++k) {
    float v6[6];
    std::memcpy(v6, src + k * sizeof(v6), sizeof(v6));
    md_.positions_f32().set(atoms[k], Vec3f{v6[0], v6[1], v6[2]});
    md_.velocities_f32().set(atoms[k], Vec3f{v6[3], v6[4], v6[5]});
  }
}

void RankWorker::publish_halo(Tag tag, int radius) {
  const auto pairs = halo_pairs(strips_, radius);
  const std::size_t per_atom =
      tag == Tag::kHaloState ? 6 * sizeof(float) : sizeof(float);
  for (const auto& [i, j] : pairs) {
    if (i != config_.rank && j != config_.rank) continue;
    const int other = i == config_.rank ? j : i;
    PeerLink* link = peer_link(other);
    WSMD_REQUIRE(link != nullptr, "dist: no link to peer rank " << other);

    const RowSpan out = halo_rows(strips_, config_.rank, other, radius);
    const auto pack_start = Clock::now();
    const auto atoms = atoms_in_rows(md_.mapping(), out.lo, out.hi);
    if (config_.transport == HaloTransport::kShm) {
      // Gather straight into the shared slot: written once, read in place
      // by the peer, zero syscalls.
      const ShmWait wait{link->channel.fd(), config_.peer_timeout_ms};
      std::uint8_t* dst = link->shm.send.begin_publish(wait);
      const std::size_t bytes = gather_halo(tag, atoms, dst);
      link->shm.send.commit_publish(tag, bytes);
    } else {
      // Socket tier: frame a count-prefixed float array (the historical
      // wire format) and post it on the multi-fd exchange; the wire moves
      // while this rank computes, and drain happens in consume_halo.
      std::vector<std::uint8_t> buf(sizeof(std::uint64_t) +
                                    atoms.size() * per_atom);
      const std::uint64_t count =
          atoms.size() * (per_atom / sizeof(float));
      std::memcpy(buf.data(), &count, sizeof(count));
      gather_halo(tag, atoms, buf.data() + sizeof(count));
      mx_out_.push_back(std::move(buf));
      mx_.add(link->channel, tag, mx_out_.back().data(),
              mx_out_.back().size());
    }
    pack_s_ += since(pack_start);
  }
  pump_transport();
}

void RankWorker::consume_halo(Tag tag, int radius) {
  const auto pairs = halo_pairs(strips_, radius);
  const std::size_t per_atom =
      tag == Tag::kHaloState ? 6 * sizeof(float) : sizeof(float);

  if (config_.transport == HaloTransport::kSocket) {
    const auto wire_start = Clock::now();
    const auto results = mx_.drain(config_.peer_timeout_ms);
    exchange_s_ += since(wire_start);
    mx_out_.clear();

    std::size_t idx = 0;
    for (const auto& [i, j] : pairs) {
      if (i != config_.rank && j != config_.rank) continue;
      const int other = i == config_.rank ? j : i;
      const RowSpan in = halo_rows(strips_, other, config_.rank, radius);
      WSMD_REQUIRE(idx < results.size(),
                   "dist: missing halo reply from rank " << other);
      const auto unpack_start = Clock::now();
      Unpacker u(results[idx]);
      const auto values = u.get_array<float>();
      const auto atoms = atoms_in_rows(md_.mapping(), in.lo, in.hi);
      WSMD_REQUIRE(values.size() * sizeof(float) == atoms.size() * per_atom,
                   "dist: halo size mismatch from rank "
                       << other << " (" << values.size() * sizeof(float)
                       << " vs " << atoms.size() * per_atom << " bytes)");
      scatter_halo(tag, atoms,
                   reinterpret_cast<const std::uint8_t*>(values.data()));
      unpack_s_ += since(unpack_start);
      ++idx;
    }
    return;
  }

  for (const auto& [i, j] : pairs) {
    if (i != config_.rank && j != config_.rank) continue;
    const int other = i == config_.rank ? j : i;
    PeerLink* link = peer_link(other);
    WSMD_REQUIRE(link != nullptr, "dist: no link to peer rank " << other);
    const RowSpan in = halo_rows(strips_, other, config_.rank, radius);

    const ShmWait wait{link->channel.fd(), config_.peer_timeout_ms};
    const auto wire_start = Clock::now();
    std::size_t bytes = 0;
    const std::uint8_t* src = link->shm.recv.acquire(tag, bytes, wait);
    exchange_s_ += since(wire_start);

    const auto unpack_start = Clock::now();
    const auto atoms = atoms_in_rows(md_.mapping(), in.lo, in.hi);
    WSMD_REQUIRE(bytes == atoms.size() * per_atom,
                 "dist: halo size mismatch from rank "
                     << other << " (" << bytes << " vs "
                     << atoms.size() * per_atom << " bytes)");
    scatter_halo(tag, atoms, src);
    link->shm.recv.release();
    unpack_s_ += since(unpack_start);
  }
}

void RankWorker::pump_transport() {
  if (config_.transport == HaloTransport::kSocket && !mx_.empty()) {
    mx_.post();
  }
}

void RankWorker::do_step() {
  if (config_.kill_rank == config_.rank &&
      md_.step_count() + 1 == config_.kill_step) {
    // Dead-rank drill (scenarios/health decks): die abruptly mid-step, the
    // way an OOM-killed or crashed rank would.
    std::fprintf(stderr, "[wsmd rank %d] drill: killing rank at step %ld\n",
                 config_.rank, config_.kill_step);
    std::_Exit(9);
  }

  const int b = md_.b();
  const int grid_h = md_.mapping().grid_height();
  const auto rect = [&](int lo, int hi) {
    core::ShardRect r = strip_;
    r.y0 = lo;
    r.y1 = hi;
    return r;
  };
  const auto density = [&](const core::ShardRect& s) {
    md_.density_phase(s, ws_);
  };
  const auto force = [&](const core::ShardRect& s) {
    md_.force_phase(s, ws_);
  };

  // Boundary/interior split, source side: [src_lo, src_hi) are the rows
  // no peer reads at radius b. The rows outside it feed the F' halos, so
  // their density runs first and the publish goes out before the interior
  // sweep. (The phase kernels are bitwise independent of the shard
  // decomposition, so this split has no numerical consequence.)
  int src_lo = strip_.y0, src_hi = strip_.y1;
  for (const auto& [i, j] : halo_pairs(strips_, b)) {
    if (i != config_.rank && j != config_.rank) continue;
    const int other = i == config_.rank ? j : i;
    const RowSpan out = halo_rows(strips_, config_.rank, other, b);
    if (out.empty()) continue;
    if (other < config_.rank) {
      src_lo = std::max(src_lo, out.hi);
    } else {
      src_hi = std::min(src_hi, out.lo);
    }
  }
  src_lo = std::min(src_lo, strip_.y1);
  src_hi = std::max(src_hi, src_lo);

  auto t = Clock::now();
  md_.begin_step_region(ws_);
  for_region(rect(strip_.y0, src_lo), density);
  for_region(rect(src_hi, strip_.y1), density);
  busy_s_ += since(t);

  publish_halo(Tag::kHaloFprime, b);

  // Reader side: rows within b of a strip edge that has ghost rows behind
  // it read ghost F' — those are the force boundary. Everything in
  // [f_lo, f_hi) reads only own-strip F' and runs while the halos fly.
  const int f_lo =
      strip_.y0 > 0 ? std::min(strip_.y0 + b, strip_.y1) : strip_.y0;
  const int f_hi =
      strip_.y1 < grid_h ? std::max(strip_.y1 - b, f_lo) : strip_.y1;

  t = Clock::now();
  for_region(rect(src_lo, src_hi), density);
  pump_transport();
  for_region(rect(f_lo, f_hi), force);
  const double overlapped_phase1 = since(t);
  busy_s_ += overlapped_phase1;
  overlap_s_ += overlapped_phase1;

  consume_halo(Tag::kHaloFprime, b);

  t = Clock::now();
  for_region(rect(strip_.y0, f_lo), force);
  for_region(rect(f_hi, strip_.y1), force);
  core::WseMd::RegionEnergy pe;
  const bool swap_now = md_.commit_region(strip_, ws_, pe);
  busy_s_ += since(t);

  // Fresh committed state to every halo *before* the swap phase reads
  // boundary positions — and at radius b+1, so atoms that migrate across
  // the strip boundary this step carry valid state with them.
  publish_halo(Tag::kHaloState, b + 1);

  // The reductions read only own-strip data (incoming halos touch ghost
  // rows only), so they hide behind the state halos' flight. Reduce
  // before any swap perturbs the strip's atom set: the workspace slots of
  // an atom migrating in belong to its previous owner. The kinetic
  // partial moves ahead of the swap too — the swap re-partitions atoms
  // across strips but never changes a velocity, so only the association
  // of the coordinator's rank-ordered sum shifts.
  t = Clock::now();
  const auto acc = md_.reduce_region_raw(strip_, ws_);
  const double kinetic = md_.kinetic_energy_region(strip_);
  pump_transport();
  const double overlapped_phase2 = since(t);
  busy_s_ += overlapped_phase2;
  overlap_s_ += overlapped_phase2;

  consume_halo(Tag::kHaloState, b + 1);

  std::size_t applied = 0;
  if (swap_now) {
    const auto subs = sub_strips();
    t = Clock::now();
    pool_.run([&](int k) {
      md_.swap_select(subs[static_cast<std::size_t>(k)], ws_.partner);
    });
    busy_s_ += since(t);

    // Gather this strip's partner slots (a contiguous row-major slice of
    // the core array), receive the globally merged array, and apply the
    // same deterministic serial commit every other rank applies.
    const int w = md_.mapping().grid_width();
    const auto lo = static_cast<std::size_t>(strip_.y0) *
                    static_cast<std::size_t>(w);
    const auto hi = static_cast<std::size_t>(strip_.y1) *
                    static_cast<std::size_t>(w);
    std::vector<std::int32_t> slice(ws_.partner.begin() +
                                        static_cast<std::ptrdiff_t>(lo),
                                    ws_.partner.begin() +
                                        static_cast<std::ptrdiff_t>(hi));
    Packer p;
    p.put_array(slice.data(), slice.size());
    control_.send(Tag::kSwapPartners, p.bytes().data(), p.bytes().size(),
                  config_.peer_timeout_ms);
    const auto wait_start = Clock::now();
    const auto merged_bytes =
        control_.recv(Tag::kSwapMerged, config_.peer_timeout_ms);
    barrier_s_ += since(wait_start);

    t = Clock::now();
    Unpacker u(merged_bytes);
    const auto merged = u.get_array<std::int32_t>();
    std::vector<int> partner(merged.begin(), merged.end());
    applied = md_.swap_commit(partner);
    busy_s_ += since(t);
  }

  t = Clock::now();
  StepRecord rec;
  rec.step = md_.step_count();
  rec.pe_embed = pe.embed;
  rec.pe_pair = pe.pair;
  rec.kinetic = kinetic;
  rec.candidate_total = acc.candidate_total;
  rec.interaction_total = acc.interaction_total;
  rec.cycles_sum = acc.cycles_sum;
  rec.cycles_sq_sum = acc.cycles_sq_sum;
  rec.cycles_max = acc.cycles_max;
  rec.occupied = acc.occupied;
  rec.swaps_applied = applied;
  rec.swapped = swap_now ? 1 : 0;
  busy_s_ += since(t);
  rec.busy_seconds = busy_s_;
  rec.halo_pack_seconds = pack_s_;
  rec.halo_exchange_seconds = exchange_s_;
  rec.halo_unpack_seconds = unpack_s_;
  rec.barrier_seconds = barrier_s_;
  rec.overlap_compute_seconds = overlap_s_;
  control_.send_pod(Tag::kStepDone, rec, config_.peer_timeout_ms);
}

void RankWorker::do_eval_pe() {
  // Energy of the *current* configuration (construction, post-restore,
  // post-set_positions): run the density/force phases over the strip
  // without committing anything. Requires valid halo positions, which
  // every full-state broadcast guarantees. Goes through the same halo
  // publish/consume path as a step so the shm ring sequence stays in
  // lockstep on both sides of every pair.
  const auto subs = sub_strips();
  md_.begin_step_region(ws_);
  pool_.run([&](int k) {
    md_.density_phase(subs[static_cast<std::size_t>(k)], ws_);
  });
  publish_halo(Tag::kHaloFprime, md_.b());
  consume_halo(Tag::kHaloFprime, md_.b());
  pool_.run([&](int k) {
    md_.force_phase(subs[static_cast<std::size_t>(k)], ws_);
  });
  const auto pe = md_.reduce_region_energy(strip_, ws_);
  control_.send_pod(Tag::kPePartial, EnergyPartial{pe.embed, pe.pair},
                    config_.peer_timeout_ms);
}

}  // namespace wsmd::dist
