#pragma once

/// \file transport.hpp
/// Framed message transport between the coordinator and rank processes
/// (and between rank peers) over AF_UNIX stream socketpairs.
///
/// Wire format: every message is one frame — a fixed header
/// {magic "WSMD", protocol version, 16-bit tag, 64-bit payload length}
/// followed by the raw payload bytes. Both ends live on the same host
/// (fork, no exec), so payloads are memcpy'd PODs and packed arrays with
/// no byte-order translation; the magic + version check still rejects a
/// peer from a different build generation at handshake time.
///
/// Blocking discipline: all operations poll with a deadline. A receive
/// that sees EOF throws PeerClosedError (how a dead rank is detected —
/// the kernel closes its socket ends, so failure propagates to every
/// peer without heartbeat traffic); a deadline miss throws TimeoutError
/// (how a *hung* rank is detected). `exchange()` drives a send and a
/// receive on the same fd simultaneously (POLLIN|POLLOUT state machine),
/// so two peers can exchange halo slabs larger than the kernel socket
/// buffers without deadlocking on write-write.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace wsmd::dist {

/// Transport failures that are *not* precondition bugs: the peer vanished
/// or stopped responding. The distributed engine converts these into
/// RankFailureError with rank attribution.
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};
class PeerClosedError : public TransportError {
 public:
  explicit PeerClosedError(const std::string& what) : TransportError(what) {}
};
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& what) : TransportError(what) {}
};

constexpr std::uint32_t kMagic = 0x444D5357;  // "WSMD" little-endian
constexpr std::uint16_t kProtocolVersion = 1;

/// Which tier carries the rank <-> rank halo payloads (deck key
/// `dist.transport`). The AF_UNIX socket plane always exists — it is the
/// control plane and the failure detector — the choice is only whether
/// halo payloads ride it too (kSocket) or go through the per-pair POSIX
/// shared-memory rings (kShm, the default; see shm_channel.hpp).
enum class HaloTransport { kSocket, kShm };

/// Message tags. Coordinator <-> rank control plane and rank <-> rank halo
/// plane share one numbering so a crossed wire fails loudly.
enum class Tag : std::uint16_t {
  kHello = 1,       ///< rank -> coordinator: Handshake
  kHelloAck = 2,    ///< coordinator -> rank: Handshake echo
  kStep = 3,        ///< coordinator -> rank: advance one timestep
  kStepDone = 4,    ///< rank -> coordinator: StepRecord
  kThermalize = 5,  ///< coordinator -> rank: {T, RngState}
  kOk = 6,          ///< rank -> coordinator: generic ack
  kGatherState = 7,  ///< coordinator -> rank: request owned pos+vel
  kStateSlice = 8,   ///< rank -> coordinator: packed f32 pos+vel
  kRestore = 9,      ///< coordinator -> rank: full SavedState
  kSetPositions = 10,   ///< coordinator -> rank: full f64 positions
  kSetVelocities = 11,  ///< coordinator -> rank: full f64 velocities
  kEvalPe = 12,         ///< coordinator -> rank: evaluate region PE
  kPePartial = 13,      ///< rank -> coordinator: {embed, pair}
  kKinetic = 14,        ///< coordinator -> rank: evaluate region KE
  kKePartial = 15,      ///< rank -> coordinator: {ke}
  kShutdown = 16,       ///< coordinator -> rank: clean exit
  kBye = 17,            ///< rank -> coordinator: shutdown ack
  kSwapPartners = 18,   ///< rank -> coordinator: strip partner slots
  kSwapMerged = 19,     ///< coordinator -> rank: full partner array
  kHaloFprime = 32,     ///< rank <-> rank: packed f32 F' rows
  kHaloState = 33,      ///< rank <-> rank: packed f32 pos+vel rows
};

/// Handshake body, sent by each rank right after fork and echoed back by
/// the coordinator. Any mismatch aborts construction with a message naming
/// the field — the versioned guard against driving ranks from a different
/// build or decomposition.
struct Handshake {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t rank = 0;
  std::uint16_t world = 0;
  std::uint16_t pad = 0;
  std::uint64_t atoms = 0;
  std::int32_t grid_width = 0;
  std::int32_t grid_height = 0;
  std::int32_t b = 0;
  std::int32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<Handshake>);

/// One end of a socketpair, owning the fd. Move-only.
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel() { close(); }
  Channel(Channel&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send one frame. Blocks (polling POLLOUT) until fully written or the
  /// deadline passes.
  void send(Tag tag, const void* payload, std::size_t size,
            int timeout_ms) const;

  /// Receive one frame; the header must carry `expect` (a crossed wire is
  /// a protocol bug, reported as TransportError with both tags).
  std::vector<std::uint8_t> recv(Tag expect, int timeout_ms) const;

  /// Receive one frame of any tag (the rank command loop's dispatcher).
  std::vector<std::uint8_t> recv_any(Tag& tag, int timeout_ms) const;

  /// Full-duplex: send `out` while receiving a frame tagged `tag` from the
  /// same peer. Required for the pairwise halo exchange — both sides send
  /// first, and slabs can exceed the socket buffer.
  std::vector<std::uint8_t> exchange(Tag tag, const void* out,
                                     std::size_t out_size,
                                     int timeout_ms) const;

  /// Typed helpers for trivially-copyable bodies.
  template <typename T>
  void send_pod(Tag tag, const T& body, int timeout_ms) const {
    static_assert(std::is_trivially_copyable_v<T>);
    send(tag, &body, sizeof(T), timeout_ms);
  }
  template <typename T>
  T recv_pod(Tag expect, int timeout_ms) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::uint8_t> bytes = recv(expect, timeout_ms);
    WSMD_REQUIRE(bytes.size() == sizeof(T),
                 "dist: frame size mismatch for tag "
                     << static_cast<int>(expect) << " (" << bytes.size()
                     << " vs " << sizeof(T) << ")");
    T body;
    std::memcpy(&body, bytes.data(), sizeof(T));
    return body;
  }

 private:
  int fd_ = -1;
};

/// A connected AF_UNIX stream pair (SOCK_STREAM socketpair).
struct ChannelPair {
  Channel a;
  Channel b;
};
ChannelPair make_channel_pair();

/// N concurrent full-duplex exchanges — `Channel::exchange`'s
/// POLLIN|POLLOUT state machine generalized over many fds in one poll
/// loop. A rank `add()`s one exchange per halo neighbor, then either
/// `drain()`s them to completion or interleaves nonblocking `post()`
/// passes with compute: every registered send makes progress whenever its
/// socket has buffer space, so neighbor latencies overlap instead of
/// serializing pair by pair, and the no-write-write-deadlock property of
/// the single-fd exchange carries over unchanged.
///
/// The caller keeps each `out` buffer alive and unmodified until drain()
/// returns; received payloads come back in add() order.
class MultiExchange {
 public:
  MultiExchange();
  ~MultiExchange();
  MultiExchange(MultiExchange&&) noexcept;
  MultiExchange& operator=(MultiExchange&&) noexcept;

  /// Register a pairwise exchange on `ch`: send `out`, receive one frame
  /// that must carry the same `tag`.
  void add(const Channel& ch, Tag tag, const void* out, std::size_t out_size);

  /// One nonblocking progress pass: push sends into kernel buffers and
  /// pull any arrived bytes, without ever sleeping. Returns true when all
  /// registered exchanges are complete.
  bool post();

  /// Complete every registered exchange (polling with a deadline like the
  /// blocking Channel operations) and return the received payloads in
  /// add() order. Resets the object for reuse.
  std::vector<std::vector<std::uint8_t>> drain(int timeout_ms);

  bool empty() const { return ops_.empty(); }

 private:
  struct Op;
  std::vector<Op> ops_;
};

/// Serialization scratch: append/extract PODs and POD arrays to a byte
/// buffer in declaration order. Writer and reader are the same build, so
/// layout agreement is by construction.
class Packer {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }
  template <typename T>
  void put_array(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    put(static_cast<std::uint64_t>(count));
    const auto* p = reinterpret_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + count * sizeof(T));
  }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Unpacker {
 public:
  explicit Unpacker(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    WSMD_REQUIRE(pos_ + sizeof(T) <= bytes_.size(),
                 "dist: truncated frame payload");
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> get_array() {
    const auto count = static_cast<std::size_t>(get<std::uint64_t>());
    WSMD_REQUIRE(pos_ + count * sizeof(T) <= bytes_.size(),
                 "dist: truncated frame payload");
    std::vector<T> out(count);
    std::memcpy(out.data(), bytes_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return out;
  }
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace wsmd::dist
