#include "dist/domain.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>

namespace wsmd::dist {

std::vector<core::ShardRect> row_strips(int width, int height, int count) {
  std::vector<core::ShardRect> strips(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    auto& s = strips[static_cast<std::size_t>(t)];
    s.x0 = 0;
    s.x1 = width;
    s.y0 = height * t / count;
    s.y1 = height * (t + 1) / count;
  }
  return strips;
}

RowSpan halo_rows(const std::vector<core::ShardRect>& strips, int owner,
                  int needer, int b) {
  const auto& own = strips[static_cast<std::size_t>(owner)];
  const auto& need = strips[static_cast<std::size_t>(needer)];
  if (own.empty() || need.empty() || owner == needer) return {};
  RowSpan span;
  span.lo = std::max(own.y0, need.y0 - b);
  span.hi = std::min(own.y1, need.y1 + b);
  if (span.hi <= span.lo) return {};
  return span;
}

std::vector<std::pair<int, int>> halo_pairs(
    const std::vector<core::ShardRect>& strips, int b) {
  std::vector<std::pair<int, int>> pairs;
  const int m = static_cast<int>(strips.size());
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      if (!halo_rows(strips, i, j, b).empty() ||
          !halo_rows(strips, j, i, b).empty()) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

std::vector<std::uint32_t> atoms_in_rows(const core::AtomMapping& mapping,
                                         int lo, int hi) {
  std::vector<std::uint32_t> atoms;
  const int w = mapping.grid_width();
  for (int cy = lo; cy < hi; ++cy) {
    for (int cx = 0; cx < w; ++cx) {
      const long a = mapping.atom_at(cx, cy);
      if (a >= 0) atoms.push_back(static_cast<std::uint32_t>(a));
    }
  }
  return atoms;
}

double halo_cycles_per_step(const std::vector<core::ShardRect>& strips, int b,
                            int grid_width, int grid_height,
                            const wse::CostModel& model) {
  double cycles = 0.0;
  for (const auto& s : strips) {
    if (s.empty()) continue;
    // Ghost cores: the (2b+1)-halo of the strip clipped to the physical
    // grid — only cores held by *other* strips cross a boundary. A single
    // full-grid strip therefore has no halo at all.
    const int gx0 = std::max(0, s.x0 - b), gx1 = std::min(grid_width, s.x1 + b);
    const int gy0 = std::max(0, s.y0 - b);
    const int gy1 = std::min(grid_height, s.y1 + b);
    const double ghost = static_cast<double>(gx1 - gx0) * (gy1 - gy0) -
                         static_cast<double>(s.x1 - s.x0) * (s.y1 - s.y0);
    // Two neighborhood exchanges per timestep cross the strip boundary:
    // candidate positions and embedding derivatives (paper phases 1 and 3).
    cycles += 2.0 * ghost * model.ghost_core_cycles();
  }
  return cycles;
}

std::string run_scoped_name(const std::string& kind, long pid) {
  return "wsmd-" + kind + "-" + std::to_string(pid);
}

std::string rank_suffix(const std::string& base, int rank) {
  return base + ".rank" + std::to_string(rank);
}

std::string shm_segment_name(long pid, int rank_i, int rank_j) {
  std::string name = "/";
  name += rank_suffix(run_scoped_name("shm", pid), rank_i);
  name += '-';
  name += std::to_string(rank_j);
  return name;
}

std::string rank_scratch_path(const std::string& dir, const std::string& base,
                              int rank) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += rank_suffix(base, rank);
  return path;
}

ScratchDir::ScratchDir(const std::string& parent) {
  namespace fs = std::filesystem;
  fs::path root = parent.empty() ? fs::temp_directory_path() : fs::path(parent);
  std::string leaf = ".";
  leaf += run_scoped_name("dist", static_cast<long>(::getpid()));
  fs::path dir = root / leaf;
  std::error_code ec;
  fs::create_directories(dir, ec);  // best-effort; ranks fall back to stderr
  path_ = dir.string();
}

ScratchDir::~ScratchDir() {
  if (keep_) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best-effort cleanup
}

std::string ScratchDir::rank_file(const std::string& base, int rank) const {
  return rank_scratch_path(path_, base, rank);
}

}  // namespace wsmd::dist
