#include "dist/distributed_engine.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "dist/rank_worker.hpp"
#include "dist/shm_channel.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::dist {

namespace {

constexpr int kHandshakeTimeoutMs = 30'000;
constexpr int kShutdownTimeoutMs = 2'000;

}  // namespace

DistributedEngine::DistributedEngine(const lattice::Structure& s,
                                     eam::EamPotentialPtr potential,
                                     DistributedConfig config)
    : config_(std::move(config)),
      template_(s, std::move(potential), config_.wse),
      scratch_(config_.scratch_parent) {
  WSMD_REQUIRE(config_.ranks >= 1 && config_.ranks <= kMaxRanks,
               "ranks backend needs 1.." << kMaxRanks << " ranks, got "
                                         << config_.ranks);
  WSMD_REQUIRE(config_.threads >= 1,
               "ranks backend needs >= 1 shard threads per rank, got "
                   << config_.threads);
  const int m = config_.ranks;
  strips_ = row_strips(template_.mapping().grid_width(),
                       template_.mapping().grid_height(), m);
  last_steps_.assign(static_cast<std::size_t>(m), 0);
  prev_.resize(static_cast<std::size_t>(m));
  cum_load_.resize(static_cast<std::size_t>(m));

  spawn_ranks();
  try {
    for (int r = 0; r < m; ++r) {
      const auto& ch = control_[static_cast<std::size_t>(r)];
      Handshake hello;
      try {
        hello = ch.recv_pod<Handshake>(Tag::kHello, kHandshakeTimeoutMs);
      } catch (const TransportError& e) {
        rank_failed(r, std::string("handshake failed: ") + e.what());
      }
      WSMD_REQUIRE(hello.rank == r && hello.world == m &&
                       hello.atoms == template_.atom_count() &&
                       hello.grid_width == template_.mapping().grid_width() &&
                       hello.grid_height == template_.mapping().grid_height(),
                   "dist: handshake mismatch from rank " << r);
      ch.send_pod(Tag::kHelloAck, hello, kHandshakeTimeoutMs);
    }
    // Seed the cached energies: PE of the initial configuration evaluated
    // *distributed* (the serial lazy sweep would defeat the decomposition
    // at multi-million atoms), KE of the (zero or restored) velocities.
    refresh_potential_energy();
    refresh_kinetic_energy();
  } catch (...) {
    shutdown_ranks();
    throw;
  }
}

DistributedEngine::~DistributedEngine() { shutdown_ranks(); }

void DistributedEngine::spawn_ranks() {
  const int m = config_.ranks;
  std::vector<ChannelPair> controls(static_cast<std::size_t>(m));
  for (auto& pair : controls) pair = make_channel_pair();
  struct PeerPair {
    int i;
    int j;
    ChannelPair pair;
  };
  std::vector<PeerPair> peers;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      peers.push_back(PeerPair{i, j, make_channel_pair()});
    }
  }

  // Shm tier: create every halo pair's shared segment *before* forking —
  // the ranks inherit the live mappings, and because each segment is
  // shm_unlinked inside its constructor, no /dev/shm entry survives this
  // loop, let alone a crashed rank. Pairs come from the state-exchange
  // radius b+1 (a superset of the F' pairs at radius b); slots are sized
  // for the largest message either direction can carry — rows x grid
  // width is an upper bound on halo atoms, swaps included.
  std::vector<ShmPairSegment> segments;
  if (config_.transport == HaloTransport::kShm) {
    const int b = template_.b();
    const int w = template_.mapping().grid_width();
    const long pid = static_cast<long>(::getpid());
    for (const auto& [i, j] : halo_pairs(strips_, b + 1)) {
      std::size_t slot_bytes = 64;
      for (const auto& [owner, needer] :
           {std::pair<int, int>{i, j}, std::pair<int, int>{j, i}}) {
        const std::size_t fp_rows = static_cast<std::size_t>(
            halo_rows(strips_, owner, needer, b).rows());
        const std::size_t st_rows = static_cast<std::size_t>(
            halo_rows(strips_, owner, needer, b + 1).rows());
        slot_bytes = std::max(
            {slot_bytes, fp_rows * static_cast<std::size_t>(w) * 4,
             st_rows * static_cast<std::size_t>(w) * 24});
      }
      segments.emplace_back(pid, i, j, slot_bytes);
    }
  }

  for (int r = 0; r < m; ++r) {
    const pid_t pid = ::fork();
    WSMD_REQUIRE(pid >= 0, "dist: fork failed for rank " << r);
    if (pid == 0) {
      // --- rank process ------------------------------------------------
      // The coordinator owns interrupt handling; ranks exit when their
      // control socket EOFs, so a signal racing the teardown protocol
      // would only make shutdown messier.
      ::signal(SIGINT, SIG_IGN);
      ::signal(SIGTERM, SIG_IGN);
      // Rank-suffixed stderr capture: concurrent ranks never interleave
      // into the coordinator's stream, and the runner can copy the files
      // into a diagnostic bundle on failure.
      const std::string log = scratch_.rank_file("stderr", r);
      const int log_fd =
          ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, 2);
        ::close(log_fd);
      }
      // Keep only this rank's channel ends; every other inherited fd is
      // closed so peer death is observable as EOF.
      Channel control = std::move(controls[static_cast<std::size_t>(r)].b);
      for (int q = 0; q < m; ++q) {
        controls[static_cast<std::size_t>(q)].a.close();
        if (q != r) controls[static_cast<std::size_t>(q)].b.close();
      }
      std::vector<PeerLink> my_peers;
      for (auto& pp : peers) {
        if (pp.i == r) {
          pp.pair.b.close();
          PeerLink link;
          link.rank = pp.j;
          link.channel = std::move(pp.pair.a);
          my_peers.push_back(std::move(link));
        } else if (pp.j == r) {
          pp.pair.a.close();
          PeerLink link;
          link.rank = pp.i;
          link.channel = std::move(pp.pair.b);
          my_peers.push_back(std::move(link));
        } else {
          pp.pair.a.close();
          pp.pair.b.close();
        }
      }
      // Keep ring views only toward this rank's own peers; drop the other
      // pairs' inherited mappings so the memory frees with its two owners.
      for (auto& seg : segments) {
        if (seg.rank_i() == r || seg.rank_j() == r) {
          const int other = seg.rank_i() == r ? seg.rank_j() : seg.rank_i();
          for (auto& link : my_peers) {
            if (link.rank == other) link.shm = seg.halo_for(r);
          }
        } else {
          seg.unmap();
        }
      }
      RankWorkerConfig wc;
      wc.rank = r;
      wc.world = m;
      wc.threads = config_.threads;
      wc.peer_timeout_ms = config_.step_timeout_ms;
      wc.kill_rank = config_.kill_rank;
      wc.kill_step = config_.kill_step;
      wc.transport = config_.transport;
      try {
        RankWorker worker(template_, wc, std::move(control),
                          std::move(my_peers));
        worker.run();  // never returns
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[wsmd rank %d] fatal during setup: %s\n", r,
                     e.what());
        std::_Exit(1);
      }
    }
    pids_.push_back(pid);
  }
  control_.reserve(static_cast<std::size_t>(m));
  for (auto& pair : controls) {
    pair.b.close();
    control_.push_back(std::move(pair.a));
  }
  // `peers` destructs here, closing the coordinator's copies of every
  // rank<->rank fd — only the two owning ranks hold each pair now.
  // `segments` destructs too: the coordinator's mappings go away, leaving
  // each shm segment alive exactly as long as its two ranks stay mapped.
}

void DistributedEngine::shutdown_ranks() noexcept {
  for (std::size_t r = 0; r < control_.size(); ++r) {
    if (!control_[r].valid()) continue;
    try {
      control_[r].send_pod(Tag::kShutdown, Ack{step_count_},
                           kShutdownTimeoutMs);
    } catch (...) {
    }
  }
  for (std::size_t r = 0; r < control_.size(); ++r) {
    if (!control_[r].valid()) continue;
    try {
      control_[r].recv(Tag::kBye, kShutdownTimeoutMs);
    } catch (...) {
    }
    control_[r].close();  // EOF backstop for a rank stuck mid-protocol
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  for (const pid_t pid : pids_) {
    if (pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD)) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  pids_.clear();
}

void DistributedEngine::rank_failed(int rank, const std::string& why) const {
  std::string msg = "rank ";
  msg += std::to_string(rank);
  msg += "/";
  msg += std::to_string(config_.ranks);
  msg += " failed: ";
  msg += why;
  msg += " (last known steps:";
  for (const long s : last_steps_) {
    msg += ' ';
    msg += std::to_string(s);
  }
  msg += ")";
  throw RankFailureError(rank, last_steps_, msg);
}

void DistributedEngine::broadcast(Tag tag, const void* payload,
                                  std::size_t size) const {
  for (std::size_t r = 0; r < control_.size(); ++r) {
    try {
      control_[r].send(tag, payload, size, config_.step_timeout_ms);
    } catch (const TransportError& e) {
      rank_failed(static_cast<int>(r), e.what());
    }
  }
}

template <typename T>
std::vector<T> DistributedEngine::collect(Tag tag) const {
  std::vector<T> replies;
  replies.reserve(control_.size());
  for (std::size_t r = 0; r < control_.size(); ++r) {
    try {
      replies.push_back(control_[r].recv_pod<T>(tag, config_.step_timeout_ms));
    } catch (const TransportError& e) {
      rank_failed(static_cast<int>(r), e.what());
    }
  }
  return replies;
}

void DistributedEngine::refresh_potential_energy() {
  broadcast(Tag::kEvalPe, nullptr, 0);
  const auto partials = collect<EnergyPartial>(Tag::kPePartial);
  double embed = 0.0, pair = 0.0;
  for (const auto& p : partials) {
    embed += p.embed;
    pair += p.pair;
  }
  pe_ = embed + pair;
}

void DistributedEngine::refresh_kinetic_energy() {
  broadcast(Tag::kKinetic, nullptr, 0);
  const auto partials = collect<KineticPartial>(Tag::kKePartial);
  double ke = 0.0;
  for (const auto& p : partials) ke += p.kinetic;
  ke_ = ke;
}

engine::Thermo DistributedEngine::step() {
  const Ack cmd{step_count_};
  broadcast(Tag::kStep, &cmd, sizeof(cmd));

  const bool swap_now =
      config_.wse.swap_interval > 0 &&
      (step_count_ + 1) % config_.wse.swap_interval == 0;
  std::size_t applied = 0;
  if (swap_now) {
    // Merge each rank's strip of partner choices into one full core array
    // (strips tile the grid, so every slot has exactly one owner), apply
    // the same deterministic swap commit the ranks apply, and broadcast.
    const int w = template_.mapping().grid_width();
    std::vector<std::int32_t> merged(template_.mapping().core_count(), -1);
    for (std::size_t r = 0; r < control_.size(); ++r) {
      std::vector<std::uint8_t> bytes;
      try {
        bytes = control_[r].recv(Tag::kSwapPartners, config_.step_timeout_ms);
      } catch (const TransportError& e) {
        rank_failed(static_cast<int>(r), e.what());
      }
      Unpacker u(bytes);
      const auto slice = u.get_array<std::int32_t>();
      const auto& strip = strips_[r];
      const auto lo =
          static_cast<std::size_t>(strip.y0) * static_cast<std::size_t>(w);
      WSMD_REQUIRE(slice.size() == static_cast<std::size_t>(strip.y1 -
                                                            strip.y0) *
                                       static_cast<std::size_t>(w),
                   "dist: partner slice size mismatch from rank " << r);
      std::copy(slice.begin(), slice.end(),
                merged.begin() + static_cast<std::ptrdiff_t>(lo));
    }
    Packer p;
    p.put_array(merged.data(), merged.size());
    broadcast(Tag::kSwapMerged, p.bytes().data(), p.bytes().size());
    std::vector<int> partner(merged.begin(), merged.end());
    applied = template_.swap_commit(partner);
  }

  const auto records = collect<StepRecord>(Tag::kStepDone);
  ++step_count_;

  // Fixed rank-order reductions: embed partials first, then pair partials,
  // matching the serial engine's embed-then-pair grouping.
  double embed = 0.0, pair = 0.0, ke = 0.0;
  double cand = 0.0, inter = 0.0, cycles_max = 0.0;
  std::uint64_t occupied = 0;
  for (std::size_t r = 0; r < records.size(); ++r) {
    const StepRecord& rec = records[r];
    WSMD_REQUIRE(rec.step == step_count_,
                 "dist: rank " << r << " is at step " << rec.step
                               << ", coordinator at " << step_count_);
    WSMD_REQUIRE((rec.swapped != 0) == swap_now,
                 "dist: rank " << r << " disagrees on the swap schedule");
    embed += rec.pe_embed;
    ke += rec.kinetic;
    cand += rec.candidate_total;
    inter += rec.interaction_total;
    cycles_max = std::max(cycles_max, rec.cycles_max);
    occupied += rec.occupied;
  }
  for (const StepRecord& rec : records) pair += rec.pe_pair;
  if (swap_now && !records.empty()) {
    WSMD_REQUIRE(records[0].swaps_applied == applied,
                 "dist: swap count diverged between coordinator ("
                     << applied << ") and ranks ("
                     << records[0].swaps_applied << ")");
  }
  pe_ = embed + pair;
  ke_ = ke;

  const double mean_candidates =
      occupied > 0 ? cand / static_cast<double>(occupied) : 0.0;
  const double mean_interactions =
      occupied > 0 ? inter / static_cast<double>(occupied) : 0.0;
  double wall =
      cycles_max / (config_.wse.cost_model.clock_ghz() * 1e9);
  if (swap_now) wall *= 2.0;  // a swap costs ~one extra step (Sec. V-E)
  elapsed_seconds_ += wall;
  cum_.candidate_step_sum += mean_candidates;
  cum_.interaction_step_sum += mean_interactions;
  if (swap_now) {
    ++cum_.swap_steps;
    telemetry::count("wse.swap_steps");
    telemetry::count("wse.swaps_applied", applied);
  }
  telemetry::count("wse.steps");
  if (telemetry::enabled()) {
    const double n = static_cast<double>(atom_count());
    telemetry::count("wse.interactions",
                     static_cast<std::uint64_t>(mean_interactions * n + 0.5));
    telemetry::count("wse.candidates",
                     static_cast<std::uint64_t>(mean_candidates * n + 0.5));
  }

  // Per-rank accounting deltas -> shard_load() and the dist.* spans.
  double d_pack = 0.0, d_wire = 0.0, d_unpack = 0.0, d_barrier = 0.0;
  double d_overlap = 0.0;
  for (std::size_t r = 0; r < records.size(); ++r) {
    const StepRecord& rec = records[r];
    const StepRecord& prev = prev_[r];
    const double busy = rec.busy_seconds - prev.busy_seconds;
    const double pack = rec.halo_pack_seconds - prev.halo_pack_seconds;
    const double wire =
        rec.halo_exchange_seconds - prev.halo_exchange_seconds;
    const double unpack = rec.halo_unpack_seconds - prev.halo_unpack_seconds;
    const double barrier = rec.barrier_seconds - prev.barrier_seconds;
    cum_load_[r].busy_seconds += busy;
    // A rank "waits" when it is idle between coordinator commands or
    // blocked on a peer's halo slab — the rank-level barrier picture.
    cum_load_[r].wait_seconds += barrier + wire;
    d_pack += pack;
    d_wire += wire;
    d_unpack += unpack;
    d_barrier += barrier;
    d_overlap +=
        rec.overlap_compute_seconds - prev.overlap_compute_seconds;
    prev_[r] = rec;
    last_steps_[r] = rec.step;
  }
  if (telemetry::enabled()) {
    const auto m = static_cast<std::uint64_t>(records.size());
    telemetry::add_span_time("dist.halo_pack", d_pack, m);
    telemetry::add_span_time("dist.halo_exchange", d_wire, m);
    telemetry::add_span_time("dist.halo_unpack", d_unpack, m);
    telemetry::add_span_time("dist.barrier", d_barrier, m);
    telemetry::add_span_time("dist.overlap_compute", d_overlap, m);
  }
  return thermo();
}

engine::Thermo DistributedEngine::thermo() const {
  engine::Thermo t;
  t.step = step_count_;
  t.potential_energy = pe_;
  t.kinetic_energy = ke_;
  t.total_energy = pe_ + ke_;
  t.temperature = 2.0 * ke_ /
                  (3.0 * static_cast<double>(template_.atom_count()) *
                   units::kBoltzmann);
  return t;
}

void DistributedEngine::gather_state(std::vector<Vec3d>& pos,
                                     std::vector<Vec3d>& vel) const {
  pos.resize(template_.atom_count());
  vel.resize(template_.atom_count());
  broadcast(Tag::kGatherState, nullptr, 0);
  for (std::size_t r = 0; r < control_.size(); ++r) {
    std::vector<std::uint8_t> bytes;
    try {
      bytes = control_[r].recv(Tag::kStateSlice, config_.step_timeout_ms);
    } catch (const TransportError& e) {
      rank_failed(static_cast<int>(r), e.what());
    }
    Unpacker u(bytes);
    const auto values = u.get_array<float>();
    const auto atoms = atoms_in_rows(template_.mapping(), strips_[r].y0,
                                     strips_[r].y1);
    WSMD_REQUIRE(values.size() == atoms.size() * 6,
                 "dist: state slice size mismatch from rank " << r);
    for (std::size_t k = 0; k < atoms.size(); ++k) {
      const float* v6 = values.data() + k * 6;
      // float -> double widening is exact: the gathered state is the
      // bitwise FP32 state the owning rank holds.
      pos[atoms[k]] = Vec3d(Vec3f{v6[0], v6[1], v6[2]});
      vel[atoms[k]] = Vec3d(Vec3f{v6[3], v6[4], v6[5]});
    }
  }
}

std::vector<Vec3d> DistributedEngine::positions() const {
  std::vector<Vec3d> pos, vel;
  gather_state(pos, vel);
  return pos;
}

std::vector<Vec3d> DistributedEngine::velocities() const {
  std::vector<Vec3d> pos, vel;
  gather_state(pos, vel);
  return vel;
}

void DistributedEngine::set_velocities(const std::vector<Vec3d>& v) {
  WSMD_REQUIRE(v.size() == template_.atom_count(),
               "set_velocities: atom count mismatch");
  Packer p;
  p.put_array(v.data(), v.size());
  broadcast(Tag::kSetVelocities, p.bytes().data(), p.bytes().size());
  collect<Ack>(Tag::kOk);
  template_.set_velocities(v);
  refresh_kinetic_energy();
}

void DistributedEngine::set_positions(const std::vector<Vec3d>& r) {
  WSMD_REQUIRE(r.size() == template_.atom_count(),
               "set_positions: atom count mismatch");
  Packer p;
  p.put_array(r.data(), r.size());
  broadcast(Tag::kSetPositions, p.bytes().data(), p.bytes().size());
  collect<Ack>(Tag::kOk);
  template_.set_positions(r);  // widens b exactly as every rank does
  refresh_potential_energy();
}

engine::State DistributedEngine::snapshot() const {
  engine::State st;
  st.step = step_count_;
  gather_state(st.positions, st.velocities);
  st.has_wafer = true;
  st.potential_energy = pe_;
  st.elapsed_seconds = elapsed_seconds_;
  st.grid_width = template_.mapping().grid_width();
  st.grid_height = template_.mapping().grid_height();
  st.b = template_.b();
  st.core_atoms = template_.mapping().core_atoms();
  st.initial_positions = template_.initial_positions();
  return st;
}

void DistributedEngine::restore(const engine::State& state) {
  core::WseMd::SavedState saved;
  if (!state.has_wafer) {
    // Reference-written snapshot: transfer positions/velocities onto the
    // constructed mapping (cross-backend, not bitwise), mirroring
    // WaferEngine::restore.
    WSMD_REQUIRE(state.positions.size() == template_.atom_count() &&
                     state.velocities.size() == template_.atom_count(),
                 "restore: atom count mismatch ("
                     << state.positions.size() << " vs "
                     << template_.atom_count() << ")");
    template_.set_positions(state.positions);
    template_.set_velocities(state.velocities);
    saved.step = state.step;
    saved.elapsed_seconds = 0.0;
    saved.potential_energy = 0.0;  // refreshed distributed below
    saved.positions = template_.positions();  // FP32-rounded
    saved.velocities = template_.velocities();
    saved.grid_width = template_.mapping().grid_width();
    saved.grid_height = template_.mapping().grid_height();
    saved.b = template_.b();
    saved.core_atoms = template_.mapping().core_atoms();
    saved.initial_positions = template_.initial_positions();
  } else {
    saved.step = state.step;
    saved.elapsed_seconds = state.elapsed_seconds;
    saved.potential_energy = state.potential_energy;
    saved.positions = state.positions;
    saved.velocities = state.velocities;
    saved.grid_width = state.grid_width;
    saved.grid_height = state.grid_height;
    saved.b = state.b;
    saved.core_atoms = state.core_atoms;
    saved.initial_positions = state.initial_positions;
  }
  // Validate coordinator-side first (restore_state throws before
  // mutating), then broadcast so every rank adopts the identical state —
  // re-ranking a ranks:2 checkpoint onto ranks:4 is just a different
  // strip partition over the same global state.
  template_.restore_state(saved);
  Packer p;
  pack_saved_state(p, saved);
  broadcast(Tag::kRestore, p.bytes().data(), p.bytes().size());
  collect<Ack>(Tag::kOk);
  step_count_ = saved.step;
  elapsed_seconds_ = saved.elapsed_seconds;
  std::fill(last_steps_.begin(), last_steps_.end(), saved.step);
  if (state.has_wafer) {
    pe_ = state.potential_energy;  // committed pre-step PE convention
  } else {
    refresh_potential_energy();
  }
  refresh_kinetic_energy();
}

void DistributedEngine::thermalize(double temperature_K, Rng& rng) {
  // Every rank must draw the identical full-grid velocity field: send the
  // pre-call Rng state, then advance the caller's Rng by running the same
  // thermalize on the coordinator's template.
  ThermalizeCmd cmd;
  cmd.temperature_K = temperature_K;
  cmd.rng = rng.state();
  template_.thermalize(temperature_K, rng);
  broadcast(Tag::kThermalize, &cmd, sizeof(cmd));
  collect<Ack>(Tag::kOk);
  refresh_kinetic_energy();
}

engine::ModeledPhaseCost DistributedEngine::modeled_phase_cost() const {
  engine::ModeledPhaseCost cost;
  cost.steps = step_count_;
  if (cost.steps <= 0) return cost;
  cost.valid = true;
  const auto steps = static_cast<double>(cost.steps);
  cost.mean_candidates = cum_.candidate_step_sum / steps;
  cost.mean_interactions = cum_.interaction_step_sum / steps;
  cost.swap_steps = cum_.swap_steps;

  const wse::CostModel& model = config_.wse.cost_model;
  const wse::CostModel::Components& c = model.components();
  const wse::CostModel::Factors& f = model.factors();
  const double cand = cum_.candidate_step_sum;
  const double inter = cum_.interaction_step_sum;
  cost.density_seconds = (c.mcast_per_candidate * f.mcast * cand +
                          c.miss_per_reject * f.miss * (cand - inter)) *
                         1e-9;
  cost.force_seconds = c.per_interaction * f.interaction * inter * 1e-9;
  cost.fixed_seconds = c.fixed * f.fixed * steps * 1e-9;
  cost.total_seconds = elapsed_seconds_;
  const double mean_step_seconds =
      cost.total_seconds / (steps + static_cast<double>(cost.swap_steps));
  cost.swap_seconds = mean_step_seconds * static_cast<double>(cost.swap_steps);
  // The executed-vs-modeled halo validation row: what the cost model says
  // M strip halos should cost, next to the measured dist.halo_* spans.
  cost.halo_seconds =
      halo_cycles_per_step(strips_, template_.b(),
                           template_.mapping().grid_width(),
                           template_.mapping().grid_height(), model) *
      steps / (model.clock_ghz() * 1e9);
  cost.halo_transport =
      config_.transport == HaloTransport::kShm ? "shm" : "socket";
  return cost;
}

std::vector<std::string> DistributedEngine::rank_log_paths() const {
  std::vector<std::string> paths;
  for (int r = 0; r < config_.ranks; ++r) {
    paths.push_back(scratch_.rank_file("stderr", r));
  }
  return paths;
}

}  // namespace wsmd::dist
