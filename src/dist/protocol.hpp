#pragma once

/// \file protocol.hpp
/// Message bodies of the coordinator <-> rank control plane (see
/// transport.hpp for framing and tags). Everything here is either a
/// trivially-copyable POD sent as one frame, or packed/unpacked with
/// Packer/Unpacker in declaration order.

#include <cstdint>

#include "core/wse_md.hpp"
#include "dist/transport.hpp"
#include "util/random.hpp"

namespace wsmd::dist {

/// Per-step report from one rank: its region's reduction partials plus
/// cumulative wall-clock accounting since fork. The coordinator combines
/// the partials in fixed rank order — the determinism contract: repeated
/// runs at the same rank count reduce in the same order, bitwise.
struct StepRecord {
  std::int64_t step = 0;  ///< rank-local step counter after the commit
  // Region partials (row-major within the strip).
  double pe_embed = 0.0;
  double pe_pair = 0.0;
  double kinetic = 0.0;
  double candidate_total = 0.0;
  double interaction_total = 0.0;
  double cycles_sum = 0.0;
  double cycles_sq_sum = 0.0;
  double cycles_max = 0.0;
  std::uint64_t occupied = 0;
  std::uint64_t swaps_applied = 0;
  std::uint32_t swapped = 0;
  std::uint32_t pad = 0;
  // Cumulative seconds since fork (coordinator takes deltas): time inside
  // the phase kernels; halo pack / wire / unpack; waiting for coordinator
  // commands (the rank-level barrier).
  double busy_seconds = 0.0;
  double halo_pack_seconds = 0.0;
  double halo_exchange_seconds = 0.0;
  double halo_unpack_seconds = 0.0;
  double barrier_seconds = 0.0;
  /// Portion of busy_seconds spent on interior tiles and reductions while
  /// halo messages were in flight — the compute the overlap pipeline hides
  /// behind communication (also counted in busy_seconds).
  double overlap_compute_seconds = 0.0;
};
static_assert(std::is_trivially_copyable_v<StepRecord>);

/// kThermalize body: every rank runs the identical full-grid Maxwell-
/// Boltzmann draw from this Rng state (the zero-net-momentum subtraction
/// is a global reduction, consistent because everyone computes it over the
/// same full velocity set).
struct ThermalizeCmd {
  double temperature_K = 0.0;
  RngState rng;
};
static_assert(std::is_trivially_copyable_v<ThermalizeCmd>);

/// kOk / kBye body.
struct Ack {
  std::int64_t step = 0;
};
static_assert(std::is_trivially_copyable_v<Ack>);

/// kPePartial / kKePartial bodies.
struct EnergyPartial {
  double embed = 0.0;
  double pair = 0.0;
};
static_assert(std::is_trivially_copyable_v<EnergyPartial>);
struct KineticPartial {
  double kinetic = 0.0;
};
static_assert(std::is_trivially_copyable_v<KineticPartial>);

/// kRestore payload: the full SavedState, broadcast so every rank (and the
/// coordinator's template) adopts the identical state bitwise.
inline void pack_saved_state(Packer& p, const core::WseMd::SavedState& st) {
  p.put(static_cast<std::int64_t>(st.step));
  p.put(st.elapsed_seconds);
  p.put(st.potential_energy);
  p.put(static_cast<std::int32_t>(st.grid_width));
  p.put(static_cast<std::int32_t>(st.grid_height));
  p.put(static_cast<std::int32_t>(st.b));
  p.put_array(st.positions.data(), st.positions.size());
  p.put_array(st.velocities.data(), st.velocities.size());
  p.put_array(st.core_atoms.data(), st.core_atoms.size());
  p.put_array(st.initial_positions.data(), st.initial_positions.size());
}

inline core::WseMd::SavedState unpack_saved_state(Unpacker& u) {
  core::WseMd::SavedState st;
  st.step = static_cast<long>(u.get<std::int64_t>());
  st.elapsed_seconds = u.get<double>();
  st.potential_energy = u.get<double>();
  st.grid_width = u.get<std::int32_t>();
  st.grid_height = u.get<std::int32_t>();
  st.b = u.get<std::int32_t>();
  st.positions = u.get_array<Vec3d>();
  st.velocities = u.get_array<Vec3d>();
  st.core_atoms = u.get_array<long>();
  st.initial_positions = u.get_array<Vec3d>();
  return st;
}

}  // namespace wsmd::dist
