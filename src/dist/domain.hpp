#pragma once

/// \file domain.hpp
/// Spatial domain decomposition bookkeeping for the distributed wafer
/// backend (and, for the strip arithmetic, the thread-sharded one).
///
/// The core grid splits into M horizontal strips — one per rank process —
/// exactly like ShardedWafer's per-thread row strips, so `ranks:M` and
/// `sharded:N` share one partition function and one modeled ghost-cost
/// formula. A rank owns the atoms mapped to the cores of its strip and
/// holds a read-only ghost copy of the rows within the neighborhood radius
/// `b` (cutoff + skin, the same radius the candidate multicast spans) on
/// either side. Because `gather_neighborhood` clips at the grid edges
/// (no wraparound), the halo topology is a chain, except that a radius
/// spanning a whole neighbor strip (small grids, large b) adds
/// next-nearest peers — `halo_rows` handles both by pure interval
/// arithmetic on the partition.
///
/// Atom migration: the online atom swap moves atoms only between adjacent
/// cores (swap radius 1), so an atom leaving a strip lands in the first
/// halo row of the neighbor — its position and velocity are already valid
/// there, and the post-commit state exchange re-synchronizes the halos
/// before the next step reads them.

#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/wse_md.hpp"
#include "wse/cost_model.hpp"

namespace wsmd::dist {

/// Split a width x height core grid into `count` horizontal strips of
/// near-equal height (strip t owns rows [h*t/count, h*(t+1)/count)).
/// Strips may be empty when the grid has fewer rows than workers.
std::vector<core::ShardRect> row_strips(int width, int height, int count);

/// Half-open row interval [lo, hi) of `owner`'s strip that `needer` reads
/// as ghost rows with neighborhood radius b: the intersection of owner's
/// rows with needer's b-expanded strip. Empty (lo >= hi) when the strips
/// are farther apart than b or either strip is empty. Both sides of an
/// exchange compute this identically from the shared partition, so the
/// wire format needs no row indices.
struct RowSpan {
  int lo = 0;
  int hi = 0;
  bool empty() const { return hi <= lo; }
  int rows() const { return hi > lo ? hi - lo : 0; }
};
RowSpan halo_rows(const std::vector<core::ShardRect>& strips, int owner,
                  int needer, int b);

/// Unordered peer pairs (i < j) that exchange halo data somewhere in the
/// partition, in lexicographic order. Every rank walks this list in order
/// and serves the pairs it is part of — a globally consistent schedule,
/// deadlock-free because the smallest uncompleted pair's two members have
/// (by induction) finished all their earlier pairs.
std::vector<std::pair<int, int>> halo_pairs(
    const std::vector<core::ShardRect>& strips, int b);

/// Atom ids mapped to the cores of rows [lo, hi), row-major, skipping
/// empty cores — the deterministic pack/unpack order of a halo message.
/// Sender and receiver derive the same list from their (swap-synchronized)
/// mappings, so only values travel on the wire.
std::vector<std::uint32_t> atoms_in_rows(const core::AtomMapping& mapping,
                                         int lo, int hi);

/// Modeled cycles per step spent refreshing the strips' ghost halos (two
/// neighborhood exchanges per step cross each strip boundary: candidate
/// positions and embedding derivatives). Shared by ShardedWafer and
/// DistributedEngine so `wsmd report` joins measured halo seconds against
/// one prediction regardless of backend.
double halo_cycles_per_step(const std::vector<core::ShardRect>& strips, int b,
                            int grid_width, int grid_height,
                            const wse::CostModel& model);

/// --- Run-scoped resource naming ------------------------------------------
/// Every per-run OS resource a distributed run creates — the scratch
/// directory, the per-rank stderr captures inside it, and the POSIX shm
/// halo segments — derives its name from these two helpers, so diagnostic
/// bundles and cleanup sweeps can never disagree about what belongs to a
/// run. `run_scoped_name` pins the run (kind + coordinator pid, so
/// concurrent runs sharing a host stay disjoint); `rank_suffix` pins the
/// rank(s) within it.

/// "wsmd-<kind>-<pid>" — the per-run stem.
std::string run_scoped_name(const std::string& kind, long pid);

/// "<base>.rank<k>" — the per-rank leaf under a run-scoped stem.
std::string rank_suffix(const std::string& base, int rank);

/// POSIX shm segment name for the halo mailboxes of peer pair (i, j),
/// i < j: "/wsmd-shm-<pid>.rank<i>-<j>" (shm_open requires the leading
/// slash; the visible /dev/shm entry, while it exists, carries the same
/// run/rank provenance as the scratch files).
std::string shm_segment_name(long pid, int rank_i, int rank_j);

/// Rank-suffixed scratch path under `dir`: "<dir>/<base>.rank<k>". Every
/// per-rank side file (stderr capture, debris from aborted runs) goes
/// through this so concurrent ranks — and concurrent runs pointing at the
/// same --output-dir — never collide on a name.
std::string rank_scratch_path(const std::string& dir, const std::string& base,
                              int rank);

/// Owned scratch directory for one distributed run: creates
/// "<parent>/.wsmd-dist-<pid>" (pid-suffixed, so concurrent runs sharing
/// an --output-dir stay disjoint) and removes it with everything inside on
/// destruction — teardown is atomic from the runner's point of view: the
/// directory either exists with whatever the ranks wrote, or is gone.
class ScratchDir {
 public:
  /// `parent` empty: use the system temp directory.
  explicit ScratchDir(const std::string& parent);
  ~ScratchDir();
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }
  /// "<path()>/<base>.rank<k>".
  std::string rank_file(const std::string& base, int rank) const;
  /// Keep the directory on destruction (diagnostic bundles point into it).
  void keep() { keep_ = true; }

 private:
  std::string path_;
  bool keep_ = false;
};

}  // namespace wsmd::dist
