#include "dist/shm_channel.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <ctime>
#include <new>
#include <thread>

#include "dist/domain.hpp"

namespace wsmd::dist {

namespace {

using Clock = std::chrono::steady_clock;
using shm_detail::RingHeader;
using shm_detail::kSlots;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// FUTEX_WAIT on `word` while it still holds `expected`, for at most
/// `timeout_ms`. The kernel re-checks the value atomically, so a bump
/// between our load and the syscall returns immediately (EAGAIN) — no
/// lost-wakeup window. Plain-value punning of the atomic is sound: the
/// standard guarantees lock-free std::atomic<uint32_t> has the object
/// representation of its value type.
void futex_wait_chunk(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                      int timeout_ms) {
  timespec ts{timeout_ms / 1000, static_cast<long>(timeout_ms % 1000) * 1'000'000L};
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT,
            expected, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* word) {
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
            INT_MAX, nullptr, nullptr, 0);
}

/// Nonblocking dead-peer check between futex chunks: an EOF on the
/// (otherwise idle) peer socket means the process this wait depends on is
/// gone — fail now, not at dist.timeout.
void check_peer_alive(const ShmWait& wait, const char* what) {
  if (wait.peer_fd < 0) return;
  pollfd p{wait.peer_fd, POLLIN, 0};
  const int rc = ::poll(&p, 1, 0);
  if (rc < 0 && errno != EINTR) {
    throw TransportError(std::string("dist shm: poll failed: ") +
                         std::strerror(errno));
  }
  if (rc > 0 && (p.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL))) {
    std::uint8_t byte;
    const ssize_t r = ::recv(wait.peer_fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r == 0) {
      throw PeerClosedError("dist shm: peer closed while waiting for " +
                            std::string(what));
    }
    // r > 0: a queued frame for a later (socket-plane) operation — not
    // ours to consume; r < 0/EAGAIN: spurious readiness. Either way the
    // peer is alive.
  }
}

/// Wait until `ready` holds: spin briefly (multi-core fast path, where the
/// peer's publish is usually in flight), then sleep on `word` — the futex
/// counter the peer bumps whenever it makes the kind of progress `ready`
/// is watching — registering in `waiters` so the peer's fast path can skip
/// the wake syscall. Sleeps are chunked so the transport deadline and the
/// dead-peer canary stay responsive.
template <typename Pred>
void wait_until(const Pred& ready, std::atomic<std::uint32_t>& word,
                std::atomic<std::uint32_t>& waiters, const ShmWait& wait,
                const char* what) {
  // Spinning only helps when the peer can make progress on another core;
  // on a single-CPU host it just delays the yield that lets the peer run.
  static const int kSpinIters =
      std::thread::hardware_concurrency() > 1 ? 512 : 0;
  for (int i = 0; i < kSpinIters; ++i) {
    if (ready()) return;
    cpu_relax();
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(wait.timeout_ms);
  constexpr int kChunkMs = 20;
  for (;;) {
    const std::uint32_t v = word.load(std::memory_order_acquire);
    if (ready()) return;
    const auto now = Clock::now();
    if (now >= deadline) {
      throw TimeoutError(std::string("dist shm: timed out waiting for ") +
                         what);
    }
    const auto remaining_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    waiters.fetch_add(1, std::memory_order_seq_cst);
    // Re-check after registering: the bump-then-check-waiters order on the
    // producer side plus this check-after-register close the sleep/wake
    // race; the kernel's atomic compare of `word` against `v` closes the
    // rest.
    if (!ready()) {
      futex_wait_chunk(&word, v, std::min(kChunkMs, remaining_ms + 1));
    }
    waiters.fetch_sub(1, std::memory_order_relaxed);
    check_peer_alive(wait, what);
  }
}

/// Publish/consume-side progress notification: bump the direction's futex
/// word, wake only if someone registered.
void bump_and_wake(std::atomic<std::uint32_t>& word,
                   std::atomic<std::uint32_t>& waiters) {
  word.fetch_add(1, std::memory_order_seq_cst);
  if (waiters.load(std::memory_order_seq_cst) > 0) futex_wake_all(&word);
}

[[noreturn]] void throw_errno_shm(const char* op) {
  throw TransportError(std::string("dist shm: ") + op + " failed: " +
                       std::strerror(errno));
}

constexpr std::size_t kHeaderBytes =
    2 * sizeof(RingHeader);  // ring A (i->j) then ring B (j->i)

std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

}  // namespace

std::uint8_t* ShmRing::begin_publish(const ShmWait& wait) {
  WSMD_REQUIRE(valid(), "dist shm: publish on an empty ring view");
  WSMD_REQUIRE(!writing_, "dist shm: begin_publish without commit_publish");
  const std::uint64_t n = next_publish_;
  // Slot n % 2 is rewritable once the consumer is past message n - 2.
  wait_until(
      [&] {
        return header_->tail.load(std::memory_order_acquire) + kSlots > n;
      },
      header_->tail_futex, header_->tail_waiters, wait,
      "a free shm ring slot");
  const std::size_t slot = static_cast<std::size_t>(n % kSlots);
  header_->slot_seq[slot].store(2 * n + 1, std::memory_order_relaxed);
  writing_ = true;
  return slots_ + slot * slot_bytes_;
}

void ShmRing::commit_publish(Tag tag, std::size_t size) {
  WSMD_REQUIRE(writing_, "dist shm: commit_publish without begin_publish");
  WSMD_REQUIRE(size <= slot_bytes_,
               "dist shm: halo payload (" << size
                                          << " bytes) exceeds the slot "
                                             "capacity sized at fork ("
                                          << slot_bytes_ << ")");
  const std::uint64_t n = next_publish_;
  const std::size_t slot = static_cast<std::size_t>(n % kSlots);
  header_->slot_tag[slot].store(static_cast<std::uint16_t>(tag),
                                std::memory_order_relaxed);
  header_->slot_size[slot].store(size, std::memory_order_relaxed);
  header_->slot_seq[slot].store(2 * n + 2, std::memory_order_release);
  header_->head.store(n + 1, std::memory_order_release);
  bump_and_wake(header_->head_futex, header_->head_waiters);
  next_publish_ = n + 1;
  writing_ = false;
}

void ShmRing::publish(Tag tag, const void* payload, std::size_t size,
                      const ShmWait& wait) {
  std::uint8_t* dst = begin_publish(wait);
  WSMD_REQUIRE(size <= slot_bytes_,
               "dist shm: halo payload (" << size
                                          << " bytes) exceeds the slot "
                                             "capacity sized at fork ("
                                          << slot_bytes_ << ")");
  if (size > 0) std::memcpy(dst, payload, size);
  commit_publish(tag, size);
}

const std::uint8_t* ShmRing::acquire(Tag expect, std::size_t& size,
                                     const ShmWait& wait) {
  WSMD_REQUIRE(valid(), "dist shm: acquire on an empty ring view");
  WSMD_REQUIRE(!held_, "dist shm: acquire without releasing the last slot");
  const std::uint64_t n = next_consume_;
  wait_until(
      [&] { return header_->head.load(std::memory_order_acquire) > n; },
      header_->head_futex, header_->head_waiters, wait,
      "the peer's shm halo message");
  const std::size_t slot = static_cast<std::size_t>(n % kSlots);
  const std::uint64_t seq =
      header_->slot_seq[slot].load(std::memory_order_acquire);
  if (seq != 2 * n + 2) {
    throw TransportError(
        "dist shm: slot sequence " + std::to_string(seq) + " for message " +
        std::to_string(n) + " (expected " + std::to_string(2 * n + 2) +
        ") — torn or out-of-protocol write");
  }
  const auto tag = header_->slot_tag[slot].load(std::memory_order_relaxed);
  if (tag != static_cast<std::uint16_t>(expect)) {
    throw TransportError("dist shm: unexpected message tag " +
                         std::to_string(tag) + " (expected " +
                         std::to_string(static_cast<int>(expect)) + ")");
  }
  size = static_cast<std::size_t>(
      header_->slot_size[slot].load(std::memory_order_relaxed));
  if (size > slot_bytes_) {
    throw TransportError("dist shm: corrupt slot size " +
                         std::to_string(size));
  }
  held_ = true;
  return slots_ + slot * slot_bytes_;
}

void ShmRing::release() {
  WSMD_REQUIRE(held_, "dist shm: release without an outstanding acquire");
  const std::uint64_t n = next_consume_;
  const std::size_t slot = static_cast<std::size_t>(n % kSlots);
  // The producer may not touch the slot again until we advance tail; a
  // changed sequence here means the in-place read raced a rewrite.
  const std::uint64_t seq =
      header_->slot_seq[slot].load(std::memory_order_acquire);
  if (seq != 2 * n + 2) {
    throw TransportError(
        "dist shm: slot rewritten during in-place read of message " +
        std::to_string(n) + " (sequence " + std::to_string(seq) + ")");
  }
  held_ = false;
  next_consume_ = n + 1;
  header_->tail.store(n + 1, std::memory_order_release);
  bump_and_wake(header_->tail_futex, header_->tail_waiters);
}

ShmPairSegment::ShmPairSegment(long pid, int rank_i, int rank_j,
                               std::size_t slot_bytes)
    : rank_i_(rank_i), rank_j_(rank_j) {
  slot_bytes_ = align_up(slot_bytes > 0 ? slot_bytes : 64, 64);
  map_bytes_ = kHeaderBytes + 2 * kSlots * slot_bytes_;
  const std::string name = shm_segment_name(pid, rank_i, rank_j);

  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // Debris from a crashed run that recycled our pid: reclaim the name.
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) throw_errno_shm("shm_open");
  if (::ftruncate(fd, static_cast<off_t>(map_bytes_)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw_errno_shm("ftruncate");
  }
  void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd, 0);
  // Unlink *before* any failure path can be skipped: forked ranks inherit
  // the mapping, not the name, so the /dev/shm entry has no further use —
  // and removing it here makes segment leaks impossible even under
  // SIGKILL.
  ::close(fd);
  ::shm_unlink(name.c_str());
  if (mem == MAP_FAILED) throw_errno_shm("mmap");
  base_ = static_cast<std::uint8_t*>(mem);
  // ftruncate zero-fills, but construct the headers properly anyway.
  new (base_) RingHeader{};
  new (base_ + sizeof(RingHeader)) RingHeader{};
}

ShmPairSegment::~ShmPairSegment() { unmap(); }

ShmPairSegment::ShmPairSegment(ShmPairSegment&& other) noexcept
    : rank_i_(other.rank_i_),
      rank_j_(other.rank_j_),
      base_(other.base_),
      map_bytes_(other.map_bytes_),
      slot_bytes_(other.slot_bytes_) {
  other.base_ = nullptr;
}

ShmPairSegment& ShmPairSegment::operator=(ShmPairSegment&& other) noexcept {
  if (this != &other) {
    unmap();
    rank_i_ = other.rank_i_;
    rank_j_ = other.rank_j_;
    base_ = other.base_;
    map_bytes_ = other.map_bytes_;
    slot_bytes_ = other.slot_bytes_;
    other.base_ = nullptr;
  }
  return *this;
}

void ShmPairSegment::unmap() {
  if (base_ != nullptr) {
    ::munmap(base_, map_bytes_);
    base_ = nullptr;
  }
}

ShmHalo ShmPairSegment::halo_for(int my_rank) const {
  WSMD_REQUIRE(base_ != nullptr, "dist shm: segment already unmapped");
  WSMD_REQUIRE(my_rank == rank_i_ || my_rank == rank_j_,
               "dist shm: rank " << my_rank << " is not a member of pair ("
                                 << rank_i_ << ", " << rank_j_ << ")");
  auto* ring_ij = reinterpret_cast<RingHeader*>(base_);
  auto* ring_ji = reinterpret_cast<RingHeader*>(base_ + sizeof(RingHeader));
  std::uint8_t* slots_ij = base_ + kHeaderBytes;
  std::uint8_t* slots_ji = slots_ij + kSlots * slot_bytes_;
  ShmHalo halo;
  if (my_rank == rank_i_) {
    halo.send = ShmRing(ring_ij, slots_ij, slot_bytes_);
    halo.recv = ShmRing(ring_ji, slots_ji, slot_bytes_);
  } else {
    halo.send = ShmRing(ring_ji, slots_ji, slot_bytes_);
    halo.recv = ShmRing(ring_ij, slots_ij, slot_bytes_);
  }
  return halo;
}

}  // namespace wsmd::dist
