#pragma once

/// \file distributed_engine.hpp
/// Executed multi-process wafer backend: `ranks:M[xN]`.
///
/// The coordinator constructs one template WseMd (structure, potential
/// tables, mapping), then forks M rank processes that inherit it bitwise
/// by copy-on-write — no construction-time serialization. Each rank owns
/// a horizontal strip of the core grid (dist::row_strips, the same
/// partition ShardedWafer uses for threads) and advances only its strip,
/// exchanging ghost-halo planes with peer ranks over AF_UNIX socketpairs
/// (see rank_worker.hpp for the in-step protocol). Optionally each rank
/// runs N shard threads over sub-strips (`ranks:MxN`).
///
/// Determinism contract:
///   - Per-atom trajectories are bitwise identical to the serial wafer
///     engine: every input an atom's update reads is the exact FP32 value
///     the serial sweep would read (halo values are bitwise transfers).
///   - Global reductions (PE, KE, step statistics) combine per-rank
///     partials in fixed rank order: bitwise-stable across repeated runs
///     at fixed M, within the FP32 tolerance band of the serial engine
///     across different M (the partials regroup a long FP64 sum).
///   - Thermostat rescales feed the combined temperature back into the
///     velocities, so thermostatted trajectories drift ulp-level from
///     serial while NVE segments stay bitwise.
///
/// The coordinator drives ranks in lockstep — one command, M replies — so
/// positions()/snapshot() gathers at step boundaries are always
/// consistent, and the Engine surface (runner, probes, streaming,
/// checkpoints) works unchanged. Teardown sends kShutdown, waits, then
/// SIGKILLs stragglers; the destructor path also covers coordinator
/// aborts, and a vanished coordinator EOFs every rank into a quiet exit.

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "core/wse_md.hpp"
#include "dist/domain.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "engine/engine.hpp"

namespace wsmd::dist {

/// Most ranks the backend accepts: all-pairs socketpairs are preallocated
/// (so halos spanning whole neighbor strips need no forwarding), which is
/// quadratic in M — 16 ranks is 120 pairs, far past the per-host scaling
/// this backend targets.
constexpr int kMaxRanks = 16;

struct DistributedConfig {
  core::WseMdConfig wse;  ///< underlying wafer-engine configuration
  int ranks = 2;          ///< rank processes (1..kMaxRanks)
  int threads = 1;        ///< shard threads per rank (ranks:MxN)
  /// Deadline for a rank to answer a command. A rank that stops
  /// heartbeating (hung, not dead) trips this and surfaces as a
  /// RankFailureError, which the runner converts into a health.stall
  /// abort. Deck key: dist.timeout (seconds).
  int step_timeout_ms = 300'000;
  /// Dead-rank drill (deck keys dist.kill_rank / dist.kill_step): rank
  /// kill_rank calls _Exit at the start of step kill_step.
  int kill_rank = -1;
  long kill_step = 0;
  /// Which tier carries the halo payloads (deck key dist.transport):
  /// per-pair shared-memory rings (default) or the peer sockets. The
  /// trajectory is bitwise transport-invariant; only the wire differs.
  HaloTransport transport = HaloTransport::kShm;
  /// Parent directory for the per-rank scratch files (stderr captures);
  /// empty uses the system temp dir. The runner points this at
  /// --output-dir so diagnostics land next to the run's artifacts without
  /// rank-vs-rank or run-vs-run collisions (pid-suffixed subdir,
  /// rank-suffixed names, removed atomically on clean teardown).
  std::string scratch_parent;
};

/// A rank process died or stopped responding. Carries the per-rank
/// last-known step counters so the run-health bundle can record how far
/// each rank got.
class RankFailureError : public Error {
 public:
  RankFailureError(int rank, std::vector<long> last_steps,
                   const std::string& what)
      : Error(what), rank_(rank), last_steps_(std::move(last_steps)) {}
  int failed_rank() const { return rank_; }
  const std::vector<long>& last_known_steps() const { return last_steps_; }

 private:
  int rank_;
  std::vector<long> last_steps_;
};

class DistributedEngine final : public engine::Engine {
 public:
  DistributedEngine(const lattice::Structure& s,
                    eam::EamPotentialPtr potential, DistributedConfig config);
  ~DistributedEngine() override;

  const char* backend_name() const override { return "ranks"; }
  engine::ModeledPhaseCost modeled_phase_cost() const override;
  std::vector<engine::ShardLoad> shard_load() const override {
    return cum_load_;
  }
  std::size_t atom_count() const override { return template_.atom_count(); }
  long step_count() const override { return step_count_; }
  std::vector<Vec3d> positions() const override;
  std::vector<Vec3d> velocities() const override;
  void set_velocities(const std::vector<Vec3d>& v) override;
  void set_positions(const std::vector<Vec3d>& r) override;
  engine::State snapshot() const override;
  void restore(const engine::State& state) override;
  void thermalize(double temperature_K, Rng& rng) override;
  engine::Thermo step() override;
  engine::Thermo thermo() const override;

  int ranks() const { return config_.ranks; }
  int rank_threads() const { return config_.threads; }
  const std::vector<core::ShardRect>& strips() const { return strips_; }
  /// Step each rank last reported completing (for diagnostic bundles).
  const std::vector<long>& last_known_steps() const { return last_steps_; }
  /// Per-rank stderr capture files (diagnostic bundles copy these).
  std::vector<std::string> rank_log_paths() const;
  /// Keep the scratch dir (and the rank logs in it) past teardown.
  void keep_scratch() { scratch_.keep(); }

 private:
  void spawn_ranks();
  /// Broadcast a frame to every live rank, in rank order.
  void broadcast(Tag tag, const void* payload, std::size_t size) const;
  /// Collect one POD reply from every rank, in rank order; a transport
  /// failure is rethrown as RankFailureError with rank attribution.
  template <typename T>
  std::vector<T> collect(Tag tag) const;
  /// Gather owned pos+vel slices from every rank into full FP64 arrays.
  void gather_state(std::vector<Vec3d>& pos, std::vector<Vec3d>& vel) const;
  /// Recompute the cached PE / KE from rank partials (fixed rank order).
  void refresh_potential_energy();
  void refresh_kinetic_energy();
  [[noreturn]] void rank_failed(int rank, const std::string& why) const;
  void shutdown_ranks() noexcept;

  DistributedConfig config_;
  core::WseMd template_;  ///< coordinator's full-grid twin (mapping synced)
  ScratchDir scratch_;
  std::vector<core::ShardRect> strips_;
  std::vector<Channel> control_;  ///< coordinator end, per rank
  std::vector<pid_t> pids_;

  // Coordinator-tracked run state (the ranks hold the atoms).
  long step_count_ = 0;
  double elapsed_seconds_ = 0.0;
  double pe_ = 0.0;
  double ke_ = 0.0;
  core::WseMd::CumulativeStats cum_;
  std::vector<long> last_steps_;
  std::vector<StepRecord> prev_;  ///< last cumulative accounting, per rank
  std::vector<engine::ShardLoad> cum_load_;
};

}  // namespace wsmd::dist
