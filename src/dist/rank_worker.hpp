#pragma once

/// \file rank_worker.hpp
/// The rank-process side of the distributed wafer backend.
///
/// A rank inherits the coordinator's fully-constructed WseMd by fork
/// (copy-on-write — structure, potential tables, and mapping arrive
/// bitwise with no serialization), then serves a lockstep command loop:
/// the coordinator broadcasts one command, every rank executes it and
/// replies. A timestep runs the phase kernels over the rank's core-grid
/// row strip only, with two pairwise halo exchanges against peer ranks:
/// F' after the density phase (radius b, what the force kernels read) and
/// committed positions+velocities after the commit (radius b+1, one row
/// of slack so an atom-swap migration never exposes a stale ghost).
///
/// Per-atom state therefore evolves bitwise identically to the serial
/// engine — every value an atom's update reads (neighbor positions, F',
/// its own velocity) is the exact FP32 value the serial sweep would read;
/// only the global energy reductions differ (rank-ordered partial sums,
/// combined by the coordinator).
///
/// Teardown: a clean run ends with kShutdown -> kBye -> _Exit(0). If the
/// coordinator dies first, the control socket EOFs and the rank exits
/// quietly; if a *peer* dies mid-exchange, the rank exits nonzero and the
/// failure cascades to the coordinator as EOFs.

#include <utility>
#include <vector>

#include "core/wse_md.hpp"
#include "dist/domain.hpp"
#include "dist/protocol.hpp"
#include "dist/transport.hpp"
#include "engine/shard_pool.hpp"

namespace wsmd::dist {

struct RankWorkerConfig {
  int rank = 0;
  int world = 1;
  int threads = 1;  ///< shard threads inside this rank (ranks:MxN)
  /// Peer-exchange deadline; a stuck peer turns into a transport error
  /// (and a nonzero exit) instead of a silent hang.
  int peer_timeout_ms = 600'000;
  /// Dead-rank drill: _Exit(9) at the start of step `kill_step` when this
  /// rank is `kill_rank` (deck keys dist.kill_rank / dist.kill_step).
  int kill_rank = -1;
  long kill_step = 0;
};

class RankWorker {
 public:
  /// `md` is the forked copy of the coordinator's template engine; the
  /// worker mutates it freely. `peers[i]` pairs a peer rank id with the
  /// channel to it, in ascending rank order.
  RankWorker(core::WseMd& md, RankWorkerConfig config, Channel control,
             std::vector<std::pair<int, Channel>> peers);

  /// Serve commands until shutdown or coordinator EOF. Never returns.
  [[noreturn]] void run();

 private:
  void handshake();
  void do_step();
  void do_eval_pe();
  /// Exchange F' ghost rows (radius b) with every peer, globally-ordered.
  void exchange_fprime();
  /// Exchange committed positions+velocities (radius b+1).
  void exchange_state();
  /// Sub-strips of this rank's strip for the rank-internal shard pool.
  std::vector<core::ShardRect> sub_strips() const;
  Channel* peer_channel(int rank);

  core::WseMd& md_;
  RankWorkerConfig config_;
  Channel control_;
  std::vector<std::pair<int, Channel>> peers_;
  std::vector<core::ShardRect> strips_;
  core::ShardRect strip_;
  engine::ShardPool pool_;
  core::StepWorkspace ws_;

  // Cumulative wall-clock accounting reported in every StepRecord.
  double busy_s_ = 0.0;
  double pack_s_ = 0.0;
  double exchange_s_ = 0.0;
  double unpack_s_ = 0.0;
  double barrier_s_ = 0.0;
};

}  // namespace wsmd::dist
