#pragma once

/// \file rank_worker.hpp
/// The rank-process side of the distributed wafer backend.
///
/// A rank inherits the coordinator's fully-constructed WseMd by fork
/// (copy-on-write — structure, potential tables, and mapping arrive
/// bitwise with no serialization), then serves a lockstep command loop:
/// the coordinator broadcasts one command, every rank executes it and
/// replies. A timestep runs the phase kernels over the rank's core-grid
/// row strip only, with two pairwise halo exchanges against peer ranks:
/// F' after the density phase (radius b, what the force kernels read) and
/// committed positions+velocities after the commit (radius b+1, one row
/// of slack so an atom-swap migration never exposes a stale ghost).
///
/// Halo payloads travel either through per-pair shared-memory rings
/// (`dist.transport = shm`, the default — see shm_channel.hpp) or over
/// the peer sockets (`socket`). Either way the step pipeline overlaps
/// communication with compute: the strip splits into boundary rows (the
/// rows peers read, and the rows that read ghost rows) and interior rows;
/// outgoing halos are published as soon as their boundary rows are
/// computed, interior tiles sweep while the halos are in flight, and the
/// incoming halos are consumed only when the boundary tiles finally need
/// them. The split is free of numerical consequence: the phase kernels
/// guarantee results bitwise independent of the shard decomposition, and
/// the energy reductions keep their strip-wide fixed order.
///
/// Per-atom state therefore evolves bitwise identically to the serial
/// engine — every value an atom's update reads (neighbor positions, F',
/// its own velocity) is the exact FP32 value the serial sweep would read;
/// only the global energy reductions differ (rank-ordered partial sums,
/// combined by the coordinator).
///
/// Teardown: a clean run ends with kShutdown -> kBye -> _Exit(0). If the
/// coordinator dies first, the control socket EOFs and the rank exits
/// quietly; if a *peer* dies mid-exchange, the rank exits nonzero and the
/// failure cascades to the coordinator as EOFs. On the shm tier a dead
/// peer is caught by the ring wait's socket canary (PeerClosedError), so
/// detection latency matches the socket tier.

#include <utility>
#include <vector>

#include "core/wse_md.hpp"
#include "dist/domain.hpp"
#include "dist/protocol.hpp"
#include "dist/shm_channel.hpp"
#include "dist/transport.hpp"
#include "engine/shard_pool.hpp"

namespace wsmd::dist {

struct RankWorkerConfig {
  int rank = 0;
  int world = 1;
  int threads = 1;  ///< shard threads inside this rank (ranks:MxN)
  /// Peer-exchange deadline; a stuck peer turns into a transport error
  /// (and a nonzero exit) instead of a silent hang.
  int peer_timeout_ms = 600'000;
  /// Dead-rank drill: _Exit(9) at the start of step `kill_step` when this
  /// rank is `kill_rank` (deck keys dist.kill_rank / dist.kill_step).
  int kill_rank = -1;
  long kill_step = 0;
  /// Which tier carries halo payloads (deck key dist.transport).
  HaloTransport transport = HaloTransport::kShm;
};

/// Everything one rank holds toward one peer: the socket (halo carrier on
/// the socket tier; control/death canary on the shm tier) and, on the shm
/// tier, the pair's ring views.
struct PeerLink {
  int rank = -1;
  Channel channel;
  ShmHalo shm;
};

class RankWorker {
 public:
  /// `md` is the forked copy of the coordinator's template engine; the
  /// worker mutates it freely. `peers[i]` links to a peer rank, in
  /// ascending rank order.
  RankWorker(core::WseMd& md, RankWorkerConfig config, Channel control,
             std::vector<PeerLink> peers);

  /// Serve commands until shutdown or coordinator EOF. Never returns.
  [[noreturn]] void run();

 private:
  void handshake();
  void do_step();
  void do_eval_pe();
  /// Pack this rank's halo rows at `radius` and send them to every peer:
  /// shm rings publish immediately (gathered straight into the slot);
  /// socket exchanges are posted on a MultiExchange and drained later.
  void publish_halo(Tag tag, int radius);
  /// Receive and scatter the peers' halo rows posted by the matching
  /// publish_halo. Blocks until all are in.
  void consume_halo(Tag tag, int radius);
  /// Nonblocking socket-exchange progress between compute tiles (no-op on
  /// the shm tier, where publish completes eagerly).
  void pump_transport();
  /// Gather halo values for `atoms` into `dst` (F': 1 float/atom; state:
  /// 6 floats/atom). Returns the byte count.
  std::size_t gather_halo(Tag tag, const std::vector<std::uint32_t>& atoms,
                          std::uint8_t* dst);
  /// Scatter received halo values for `atoms` out of `src`.
  void scatter_halo(Tag tag, const std::vector<std::uint32_t>& atoms,
                    const std::uint8_t* src);
  /// Run `phase` over `rect` split row-wise across the shard pool.
  template <typename Phase>
  void for_region(const core::ShardRect& rect, Phase&& phase);
  /// Sub-strips of this rank's strip for the rank-internal shard pool.
  std::vector<core::ShardRect> sub_strips() const;
  PeerLink* peer_link(int rank);

  core::WseMd& md_;
  RankWorkerConfig config_;
  Channel control_;
  std::vector<PeerLink> peers_;
  std::vector<core::ShardRect> strips_;
  core::ShardRect strip_;
  engine::ShardPool pool_;
  core::StepWorkspace ws_;

  // In-flight socket-tier exchange (between publish_halo and
  // consume_halo): the state machine plus its pinned send buffers.
  MultiExchange mx_;
  std::vector<std::vector<std::uint8_t>> mx_out_;

  // Cumulative wall-clock accounting reported in every StepRecord.
  double busy_s_ = 0.0;
  double pack_s_ = 0.0;
  double exchange_s_ = 0.0;
  double unpack_s_ = 0.0;
  double barrier_s_ = 0.0;
  double overlap_s_ = 0.0;
};

}  // namespace wsmd::dist
