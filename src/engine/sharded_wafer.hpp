#pragma once

/// \file sharded_wafer.hpp
/// Thread-parallel wafer backend: the PE grid partitioned into per-thread
/// rectangular shards.
///
/// Mirrors how wafer-scale stencil codes decompose the fabric into
/// rectangular regions with halo exchange: the core grid splits into
/// `threads` row strips, and each worker thread runs the timestep phases of
/// core::WseMd over its own strip. Barriers sit exactly where the real
/// machine synchronizes — after the candidate/embedding exchange (F' of
/// every neighborhood must be published before forces) and after
/// integration (before the serial commit + reduction).
///
/// Determinism: the phase kernels keep per-worker candidate arrival order
/// identical to the serial sweep, every per-atom value is written by
/// exactly one shard, and all cross-worker reductions run serially in
/// row-major core order. A ShardedWafer therefore reproduces the serial
/// core::WseMd trajectory *bitwise* at any thread count — the existing
/// physics-equivalence tests double as parity tests for this backend.
///
/// Cost accounting: the canonical WseStepStats (max/mean/stddev cycles over
/// all workers) is unchanged. Additionally each shard's stats are reduced
/// separately, and the modeled cost of refreshing each shard's (2b+1)-deep
/// ghost halo is charged from the cost model (halo_exchange_cycles) — the
/// price a region-decomposed wafer pays that the idealized global machine
/// does not.

#include <vector>

#include "core/wse_md.hpp"
#include "engine/shard_pool.hpp"
#include "engine/wafer_engine.hpp"

namespace wsmd::engine {

struct ShardedWaferConfig {
  core::WseMdConfig wse;  ///< underlying wafer-engine configuration
  /// Worker threads == shard count; 0 picks hardware concurrency.
  int threads = 1;
};

class ShardedWafer final : public WaferEngine {
 public:
  ShardedWafer(const lattice::Structure& s, eam::EamPotentialPtr potential,
               ShardedWaferConfig config = {});

  const char* backend_name() const override { return "sharded-wafer"; }
  Thermo step() override;
  Thermo run(long n, const StepCallback& callback = {}) override;
  /// Base breakdown plus the modeled halo-exchange cost of this shard
  /// decomposition (halo_seconds).
  ModeledPhaseCost modeled_phase_cost() const override;

  int threads() const { return pool_.size(); }
  const std::vector<core::ShardRect>& shards() const { return shards_; }

  /// Per-shard accounting of the most recent step (same reduction as the
  /// global stats, restricted to each shard's cores; empty shards report
  /// zeroes).
  const std::vector<core::WseStepStats>& shard_stats() const {
    return shard_stats_;
  }

  /// Modeled cycles per step spent refreshing the shards' ghost halos (two
  /// neighborhood exchanges per step: positions and F'). Zero for a single
  /// shard — the whole grid has no internal boundary.
  double halo_cycles_per_step() const;

  /// Cumulative per-worker busy/wait seconds, accumulated by run_sharded
  /// while telemetry is armed (zeros otherwise) — the raw series behind the
  /// snapshot stream's imbalance rows.
  std::vector<ShardLoad> shard_load() const override { return cum_load_; }

 private:
  /// pool_.run with telemetry: times each worker's busy span and folds the
  /// round's aggregate barrier wait (round wall time minus per-worker busy
  /// time) into the "shard.barrier_wait" span — the imbalance instrument.
  /// Falls back to a plain pool_.run when telemetry is disabled.
  void run_sharded(const std::function<void(int)>& task);

  std::vector<core::ShardRect> shards_;
  std::vector<core::WseStepStats> shard_stats_;
  std::vector<double> busy_seconds_;  ///< run_sharded scratch, per worker
  std::vector<ShardLoad> cum_load_;   ///< cumulative busy/wait, per worker
  core::StepWorkspace ws_;
  ShardPool pool_;
};

}  // namespace wsmd::engine
