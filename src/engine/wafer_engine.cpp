#include "engine/wafer_engine.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::engine {

WaferEngine::WaferEngine(const lattice::Structure& s,
                         eam::EamPotentialPtr potential,
                         core::WseMdConfig config)
    : md_(s, std::move(potential), config) {}

Thermo WaferEngine::step() {
  last_ = md_.step();
  return thermo();
}

Thermo WaferEngine::run(long n, const StepCallback& callback) {
  if (!callback) {
    last_ = md_.run(static_cast<int>(n));
  } else {
    md_.run(static_cast<int>(n), [&](const core::WseStepStats& stats) {
      last_ = stats;
      callback(thermo());
    });
  }
  return thermo();
}

State WaferEngine::snapshot() const {
  State st;
  const auto saved = md_.save_state();
  st.step = saved.step;
  st.positions = saved.positions;
  st.velocities = saved.velocities;
  st.has_wafer = true;
  st.potential_energy = saved.potential_energy;
  st.elapsed_seconds = saved.elapsed_seconds;
  st.grid_width = saved.grid_width;
  st.grid_height = saved.grid_height;
  st.b = saved.b;
  st.core_atoms = saved.core_atoms;
  st.initial_positions = saved.initial_positions;
  return st;
}

void WaferEngine::restore(const State& state) {
  if (!state.has_wafer) {
    // Reference-written snapshot: transfer positions/velocities onto the
    // constructed mapping (cross-backend, not bitwise). set_positions
    // widens b if the restored configuration needs it.
    WSMD_REQUIRE(state.positions.size() == md_.atom_count() &&
                     state.velocities.size() == md_.atom_count(),
                 "restore: atom count mismatch ("
                     << state.positions.size() << " vs " << md_.atom_count()
                     << ")");
    md_.set_positions(state.positions);
    md_.set_velocities(state.velocities);
    core::WseMd::SavedState partial = md_.save_state();
    partial.step = state.step;
    partial.elapsed_seconds = 0.0;
    md_.restore_state(partial);
    return;
  }
  core::WseMd::SavedState saved;
  saved.step = state.step;
  saved.elapsed_seconds = state.elapsed_seconds;
  saved.potential_energy = state.potential_energy;
  saved.positions = state.positions;
  saved.velocities = state.velocities;
  saved.grid_width = state.grid_width;
  saved.grid_height = state.grid_height;
  saved.b = state.b;
  saved.core_atoms = state.core_atoms;
  saved.initial_positions = state.initial_positions;
  md_.restore_state(saved);
}

Thermo WaferEngine::thermo() const {
  Thermo t;
  t.step = md_.step_count();
  t.potential_energy = md_.potential_energy();
  t.kinetic_energy = md_.kinetic_energy();
  t.total_energy = t.potential_energy + t.kinetic_energy;
  t.temperature = 2.0 * t.kinetic_energy /
                  (3.0 * static_cast<double>(md_.atom_count()) *
                   units::kBoltzmann);
  return t;
}

}  // namespace wsmd::engine
