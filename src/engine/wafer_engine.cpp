#include "engine/wafer_engine.hpp"

#include "util/units.hpp"

namespace wsmd::engine {

WaferEngine::WaferEngine(const lattice::Structure& s,
                         eam::EamPotentialPtr potential,
                         core::WseMdConfig config)
    : md_(s, std::move(potential), config) {}

Thermo WaferEngine::step() {
  last_ = md_.step();
  return thermo();
}

Thermo WaferEngine::run(long n, const StepCallback& callback) {
  if (!callback) {
    last_ = md_.run(static_cast<int>(n));
  } else {
    md_.run(static_cast<int>(n), [&](const core::WseStepStats& stats) {
      last_ = stats;
      callback(thermo());
    });
  }
  return thermo();
}

Thermo WaferEngine::thermo() const {
  Thermo t;
  t.step = md_.step_count();
  t.potential_energy = md_.potential_energy();
  t.kinetic_energy = md_.kinetic_energy();
  t.total_energy = t.potential_energy + t.kinetic_energy;
  t.temperature = 2.0 * t.kinetic_energy /
                  (3.0 * static_cast<double>(md_.atom_count()) *
                   units::kBoltzmann);
  return t;
}

}  // namespace wsmd::engine
