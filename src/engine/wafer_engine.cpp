#include "engine/wafer_engine.hpp"

#include "util/error.hpp"
#include "util/units.hpp"

namespace wsmd::engine {

WaferEngine::WaferEngine(const lattice::Structure& s,
                         eam::EamPotentialPtr potential,
                         core::WseMdConfig config)
    : md_(s, std::move(potential), config) {}

Thermo WaferEngine::step() {
  last_ = md_.step();
  return thermo();
}

Thermo WaferEngine::run(long n, const StepCallback& callback) {
  if (!callback) {
    last_ = md_.run(static_cast<int>(n));
  } else {
    md_.run(static_cast<int>(n), [&](const core::WseStepStats& stats) {
      last_ = stats;
      callback(thermo());
    });
  }
  return thermo();
}

State WaferEngine::snapshot() const {
  State st;
  const auto saved = md_.save_state();
  st.step = saved.step;
  st.positions = saved.positions;
  st.velocities = saved.velocities;
  st.has_wafer = true;
  st.potential_energy = saved.potential_energy;
  st.elapsed_seconds = saved.elapsed_seconds;
  st.grid_width = saved.grid_width;
  st.grid_height = saved.grid_height;
  st.b = saved.b;
  st.core_atoms = saved.core_atoms;
  st.initial_positions = saved.initial_positions;
  return st;
}

void WaferEngine::restore(const State& state) {
  if (!state.has_wafer) {
    // Reference-written snapshot: transfer positions/velocities onto the
    // constructed mapping (cross-backend, not bitwise). set_positions
    // widens b if the restored configuration needs it.
    WSMD_REQUIRE(state.positions.size() == md_.atom_count() &&
                     state.velocities.size() == md_.atom_count(),
                 "restore: atom count mismatch ("
                     << state.positions.size() << " vs " << md_.atom_count()
                     << ")");
    md_.set_positions(state.positions);
    md_.set_velocities(state.velocities);
    core::WseMd::SavedState partial = md_.save_state();
    partial.step = state.step;
    partial.elapsed_seconds = 0.0;
    md_.restore_state(partial);
    return;
  }
  core::WseMd::SavedState saved;
  saved.step = state.step;
  saved.elapsed_seconds = state.elapsed_seconds;
  saved.potential_energy = state.potential_energy;
  saved.positions = state.positions;
  saved.velocities = state.velocities;
  saved.grid_width = state.grid_width;
  saved.grid_height = state.grid_height;
  saved.b = state.b;
  saved.core_atoms = state.core_atoms;
  saved.initial_positions = state.initial_positions;
  md_.restore_state(saved);
}

ModeledPhaseCost WaferEngine::modeled_phase_cost() const {
  ModeledPhaseCost cost;
  cost.steps = md_.step_count();
  if (cost.steps <= 0) return cost;
  cost.valid = true;
  const core::WseMd::CumulativeStats& cum = md_.cumulative_stats();
  const auto steps = static_cast<double>(cost.steps);
  cost.mean_candidates = cum.candidate_step_sum / steps;
  cost.mean_interactions = cum.interaction_step_sum / steps;
  cost.swap_steps = cum.swap_steps;

  const wse::CostModel& model = md_.config().cost_model;
  const wse::CostModel::Components& c = model.components();
  const wse::CostModel::Factors& f = model.factors();
  const double cand = cum.candidate_step_sum;
  const double inter = cum.interaction_step_sum;
  // Phase attribution of the Table V terms: multicast + miss filtering land
  // in the density phase (candidate exchange / neighbor build), the
  // per-interaction term in the force phase, the fixed term in the
  // begin/commit bookkeeping.
  cost.density_seconds = (c.mcast_per_candidate * f.mcast * cand +
                          c.miss_per_reject * f.miss * (cand - inter)) *
                         1e-9;
  cost.force_seconds = c.per_interaction * f.interaction * inter * 1e-9;
  cost.fixed_seconds = c.fixed * f.fixed * steps * 1e-9;
  // A swap step costs roughly one extra timestep (paper Sec. V-E): charge
  // the run-average modeled step time once per swap step.
  cost.total_seconds = md_.elapsed_seconds();
  const double mean_step_seconds =
      cost.total_seconds /
      (steps + static_cast<double>(cost.swap_steps));
  cost.swap_seconds = mean_step_seconds * static_cast<double>(cost.swap_steps);
  return cost;
}

Thermo WaferEngine::thermo() const {
  Thermo t;
  t.step = md_.step_count();
  t.potential_energy = md_.potential_energy();
  t.kinetic_energy = md_.kinetic_energy();
  t.total_energy = t.potential_energy + t.kinetic_energy;
  t.temperature = 2.0 * t.kinetic_energy /
                  (3.0 * static_cast<double>(md_.atom_count()) *
                   units::kBoltzmann);
  return t;
}

}  // namespace wsmd::engine
