#include "engine/engine.hpp"

#include "dist/distributed_engine.hpp"
#include "engine/reference_engine.hpp"
#include "engine/sharded_wafer.hpp"
#include "engine/wafer_engine.hpp"
#include "util/error.hpp"

namespace wsmd::engine {

Thermo Engine::run(long n, const StepCallback& callback) {
  WSMD_REQUIRE(n >= 0, "negative step count");
  Thermo t = thermo();
  for (long k = 0; k < n; ++k) {
    t = step();
    if (callback) callback(t);
  }
  return t;
}

std::unique_ptr<Engine> make_engine(Backend backend,
                                    const lattice::Structure& s,
                                    eam::EamPotentialPtr potential,
                                    const EngineConfig& config) {
  switch (backend) {
    case Backend::kReference:
      return std::make_unique<ReferenceEngine>(s, std::move(potential),
                                               config.reference);
    case Backend::kWafer:
      return std::make_unique<WaferEngine>(s, std::move(potential),
                                           config.wafer);
    case Backend::kShardedWafer: {
      ShardedWaferConfig sw;
      sw.wse = config.wafer;
      sw.threads = config.threads;
      return std::make_unique<ShardedWafer>(s, std::move(potential), sw);
    }
    case Backend::kRanks: {
      dist::DistributedConfig dc;
      dc.wse = config.wafer;
      dc.ranks = config.ranks;
      dc.threads = config.rank_threads;
      dc.step_timeout_ms = config.dist_timeout_ms;
      dc.kill_rank = config.dist_kill_rank;
      dc.kill_step = config.dist_kill_step;
      dc.scratch_parent = config.dist_scratch;
      WSMD_REQUIRE(
          config.dist_transport == "shm" || config.dist_transport == "socket",
          "dist.transport must be shm or socket, got '"
              << config.dist_transport << "'");
      dc.transport = config.dist_transport == "socket"
                         ? dist::HaloTransport::kSocket
                         : dist::HaloTransport::kShm;
      return std::make_unique<dist::DistributedEngine>(s, std::move(potential),
                                                       std::move(dc));
    }
  }
  WSMD_REQUIRE(false, "unknown engine backend");
  return nullptr;  // unreachable
}

}  // namespace wsmd::engine
