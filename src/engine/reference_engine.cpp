#include "engine/reference_engine.hpp"

#include "util/error.hpp"

namespace wsmd::engine {

namespace {

Thermo to_thermo(const md::ThermoState& t) {
  Thermo out;
  out.step = t.step;
  out.potential_energy = t.potential_energy;
  out.kinetic_energy = t.kinetic_energy;
  out.total_energy = t.total_energy;
  out.temperature = t.temperature;
  return out;
}

}  // namespace

ReferenceEngine::ReferenceEngine(const lattice::Structure& s,
                                 eam::EamPotentialPtr potential,
                                 md::SimulationConfig config)
    : sim_(md::AtomSystem(s, std::move(potential)), config) {
  sim_.compute_forces();  // thermo() is meaningful from construction on
}

ReferenceEngine::ReferenceEngine(md::Simulation sim) : sim_(std::move(sim)) {
  sim_.compute_forces();
}

std::vector<Vec3d> ReferenceEngine::positions() const {
  return sim_.system().positions().to_aos();
}

std::vector<Vec3d> ReferenceEngine::velocities() const {
  return sim_.system().velocities().to_aos();
}

void ReferenceEngine::set_velocities(const std::vector<Vec3d>& v) {
  WSMD_REQUIRE(v.size() == sim_.system().size(), "velocity count mismatch");
  sim_.system().velocities().from_aos(v);
}

void ReferenceEngine::set_positions(const std::vector<Vec3d>& r) {
  WSMD_REQUIRE(r.size() == sim_.system().size(), "position count mismatch");
  sim_.system().positions().from_aos(r);
  sim_.compute_forces();  // keep the thermo()-valid-always contract
}

State ReferenceEngine::snapshot() const {
  State st;
  const auto sim_state = sim_.save_state();
  st.step = sim_state.step;
  st.positions = sim_state.positions;
  st.velocities = sim_state.velocities;
  st.neighbor_anchor = sim_state.neighbor_anchor;
  return st;
}

void ReferenceEngine::restore(const State& state) {
  md::SimulationState sim_state;
  sim_state.step = state.step;
  sim_state.positions = state.positions;
  sim_state.velocities = state.velocities;
  // A wafer-written snapshot carries no Verlet anchor; restore_state then
  // rebuilds the list from the positions themselves (cross-backend
  // transfer — exactness is a same-backend guarantee).
  sim_state.neighbor_anchor = state.neighbor_anchor;
  sim_.restore_state(sim_state);
}

void ReferenceEngine::thermalize(double temperature_K, Rng& rng) {
  sim_.system().thermalize(temperature_K, rng);
}

Thermo ReferenceEngine::step() { return to_thermo(sim_.run(1)); }

Thermo ReferenceEngine::run(long n, const StepCallback& callback) {
  if (!callback) return to_thermo(sim_.run(n));
  return to_thermo(sim_.run(
      n, [&](const md::ThermoState& t) { callback(to_thermo(t)); }));
}

Thermo ReferenceEngine::thermo() const { return to_thermo(sim_.thermo()); }

}  // namespace wsmd::engine
