#pragma once

/// \file shard_pool.hpp
/// Persistent worker-thread pool for the sharded wafer backend.
///
/// One pool outlives many timesteps; each `run(task)` call executes
/// task(t) for every worker index t and returns when all are done, so two
/// consecutive run() calls have an implicit barrier between them — exactly
/// the synchronization the phase kernels need (density | barrier | force).
/// A single-worker pool spawns no threads and runs tasks inline, keeping
/// the 1-thread configuration bit-for-bit the plain serial path.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsmd::engine {

class ShardPool {
 public:
  /// `workers` >= 1. One task index per worker; workers > 1 spawn that many
  /// persistent threads.
  explicit ShardPool(int workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int size() const { return workers_; }

  /// Execute task(t) for t in [0, size()) and wait for completion. The
  /// first exception thrown by any worker is rethrown here (after all
  /// workers finished the round).
  void run(const std::function<void(int)>& task);

 private:
  void worker_loop(int index);

  int workers_ = 1;
  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> errors_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable round_done_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool stop_ = false;
};

}  // namespace wsmd::engine
