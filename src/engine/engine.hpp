#pragma once

/// \file engine.hpp
/// Unified MD engine interface (backends: reference FP64, serial wafer,
/// sharded wafer).
///
/// The repo grows three ways of advancing the same physical system:
///
///   - md::Simulation   — FP64 reference ("LAMMPS role"), ground truth;
///   - core::WseMd      — functional one-atom-per-core wafer engine, FP32,
///                        with modeled cycle accounting;
///   - ShardedWafer     — the wafer engine partitioned into per-thread
///                        rectangular shards (see sharded_wafer.hpp).
///
/// `Engine` is the small common surface the benchmarks, examples, and
/// cross-engine tests drive: thermalize, step/run with a per-step callback,
/// and a thermodynamic snapshot. Adapters live next to this header; the
/// `make_engine` factory builds any backend from a structure + potential.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/wse_md.hpp"
#include "eam/potential.hpp"
#include "lattice/lattice.hpp"
#include "md/simulation.hpp"
#include "util/random.hpp"
#include "util/vec3.hpp"

namespace wsmd::engine {

/// Thermodynamic snapshot, common to every backend. For wafer backends the
/// kinetic energy uses the stored half-step leap-frog velocities (the
/// FP32 state the workers hold); the reference backend reports synchronized
/// full-step values. Cross-engine comparisons should therefore allow the
/// O(dt) sawtooth between the two conventions.
struct Thermo {
  long step = 0;
  double potential_energy = 0.0;  ///< eV
  double kinetic_energy = 0.0;    ///< eV
  double total_energy = 0.0;      ///< eV
  double temperature = 0.0;       ///< K
};

using StepCallback = std::function<void(const Thermo&)>;

/// Complete dynamic state of an engine, FP64-widened (float -> double is
/// exact, so FP32 wafer state round-trips bitwise). This is what a
/// checkpoint stores (io/checkpoint): restoring it into a fresh engine of
/// the same backend over the same structure continues the trajectory
/// bit-for-bit. The auxiliary blocks keep each backend's restart exact:
///
///   - `neighbor_anchor` (reference): the positions the Verlet list was
///     last built from. Rebuilding from the anchor reproduces both the
///     list contents (pair order fixes FP summation order) and the future
///     rebuild schedule, which plain positions would not.
///   - wafer block: the atom-to-core mapping as mutated by online atom
///     swaps, the neighborhood radius b (derived from the *initial*
///     structure, not recoverable mid-run), the committed potential
///     energy (the wafer thermo convention reports the pre-step PE, which
///     a recompute from current positions would not reproduce), the
///     modeled clock, and the displacement-diagnostic baseline.
///
/// Cross-backend restore (reference checkpoint into a wafer engine or vice
/// versa) is supported as a best-effort state transfer: positions and
/// velocities carry over, the missing auxiliaries are rebuilt, and the
/// trajectory continues within cross-backend tolerance rather than
/// bitwise.
struct State {
  long step = 0;
  std::vector<Vec3d> positions;
  std::vector<Vec3d> velocities;

  /// Reference backend: Verlet-list anchor positions (empty otherwise).
  std::vector<Vec3d> neighbor_anchor;

  /// Wafer backends (serial and sharded); unused when has_wafer is false.
  bool has_wafer = false;
  double potential_energy = 0.0;  ///< committed PE (pre-step convention)
  double elapsed_seconds = 0.0;   ///< modeled wafer clock
  int grid_width = 0;
  int grid_height = 0;
  int b = 0;                      ///< neighborhood radius
  std::vector<long> core_atoms;   ///< core (y*w+x) -> atom id, -1 = empty
  std::vector<Vec3d> initial_positions;  ///< displacement baseline
};

/// Cost-model prediction of where a finished run's modeled wafer time went,
/// phase by phase, in the same units the telemetry spans measure (seconds).
/// Produced by the wafer backends from their cumulative per-step counters
/// (mean candidates/interactions per worker) pushed through wse::CostModel;
/// `wsmd report` joins it against the measured span totals. The component
/// seconds use *mean* per-worker counts while `total_seconds` is the
/// engine's modeled clock (max-cycles, slowest worker), so components
/// summing below the total is expected — the gap is load imbalance.
struct ModeledPhaseCost {
  bool valid = false;  ///< false: backend has no cost model (reference)
  long steps = 0;
  double mean_candidates = 0.0;    ///< per worker per step, run average
  double mean_interactions = 0.0;  ///< per worker per step, run average
  long swap_steps = 0;
  double density_seconds = 0.0;  ///< candidate multicast + r^2 filtering
  double force_seconds = 0.0;    ///< pair interactions (embedding + force)
  double fixed_seconds = 0.0;    ///< per-step fixed overhead
  double swap_seconds = 0.0;     ///< atom-swap steps (~1 extra step each)
  double halo_seconds = 0.0;     ///< multi-wafer halo (sharded backend)
  double total_seconds = 0.0;    ///< modeled clock (max-cycles basis)
  /// Which transport produced the *measured* halo seconds this prediction
  /// is joined against ("shm" / "socket"; empty for non-distributed
  /// backends). Labels the report's halo row so a number is never read
  /// without its carrier.
  std::string halo_transport;
};

/// Cumulative wall-clock accounting of one shard worker: time spent inside
/// the phase kernels (busy) vs waiting at the inter-phase barriers for the
/// slowest worker of each round (wait). Only accumulated while a telemetry
/// session is armed — the disabled path takes no clock reads — so deltas
/// between two reads give the per-interval load-imbalance picture the
/// snapshot stream exports.
struct ShardLoad {
  double busy_seconds = 0.0;
  double wait_seconds = 0.0;
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual const char* backend_name() const = 0;

  /// Cost-model breakdown of the run so far. Default: invalid (backends
  /// without modeled accounting, i.e. the FP64 reference).
  virtual ModeledPhaseCost modeled_phase_cost() const { return {}; }

  /// Per-worker cumulative busy/wait accounting (see ShardLoad). Default:
  /// empty (backends without a worker pool, or telemetry never armed).
  virtual std::vector<ShardLoad> shard_load() const { return {}; }
  virtual std::size_t atom_count() const = 0;
  virtual long step_count() const = 0;

  /// Atom state, widened to FP64 for inspection and cross-engine transfer.
  virtual std::vector<Vec3d> positions() const = 0;
  virtual std::vector<Vec3d> velocities() const = 0;
  /// Overwrite velocities (e.g. copied from another engine so both
  /// integrate the same trajectory).
  virtual void set_velocities(const std::vector<Vec3d>& v) = 0;
  /// Overwrite positions (checkpoint restore, state transfer). Derived
  /// state (forces, neighbor lists, cached energies) is invalidated.
  virtual void set_positions(const std::vector<Vec3d>& r) = 0;

  /// Full dynamic state for checkpoint/restart (see State above).
  virtual State snapshot() const = 0;
  /// Restore a snapshot taken from the same structure. Same-backend
  /// restores continue the trajectory bitwise; cross-backend restores
  /// transfer positions/velocities and rebuild the rest. Throws on atom
  /// count or (for wafer backends) core-grid mismatch.
  virtual void restore(const State& state) = 0;

  /// Maxwell-Boltzmann initialization at T with zero net momentum.
  virtual void thermalize(double temperature_K, Rng& rng) = 0;

  /// Advance one timestep.
  virtual Thermo step() = 0;

  /// Advance n timesteps; `callback`, when set, fires after every step.
  /// The default implementation loops step().
  virtual Thermo run(long n, const StepCallback& callback = {});

  /// Snapshot of the current state (valid from construction on).
  virtual Thermo thermo() const = 0;
};

/// Backend selector for the factory.
enum class Backend {
  kReference,     ///< md::Simulation, FP64
  kWafer,         ///< core::WseMd, serial sweep
  kShardedWafer,  ///< core::WseMd phases over per-thread shards
  kRanks,         ///< dist::DistributedEngine, M forked rank processes
};

struct EngineConfig {
  md::SimulationConfig reference;  ///< used by kReference
  core::WseMdConfig wafer;         ///< used by kWafer / kShardedWafer / kRanks
  int threads = 1;                 ///< kShardedWafer worker count (0 = auto)

  // kRanks only (see dist::DistributedConfig for semantics).
  int ranks = 2;                ///< rank processes (ranks:M)
  int rank_threads = 1;         ///< shard threads per rank (ranks:MxN)
  int dist_timeout_ms = 300'000;  ///< rank-response deadline
  int dist_kill_rank = -1;        ///< dead-rank drill: rank to kill...
  long dist_kill_step = 0;        ///< ...at the start of this step
  std::string dist_scratch;       ///< per-rank scratch parent (""=temp dir)
  std::string dist_transport = "shm";  ///< halo carrier: "shm" | "socket"
};

std::unique_ptr<Engine> make_engine(Backend backend,
                                    const lattice::Structure& s,
                                    eam::EamPotentialPtr potential,
                                    const EngineConfig& config = {});

}  // namespace wsmd::engine
