#include "engine/sharded_wafer.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "dist/domain.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wsmd::engine {

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ShardedWafer::ShardedWafer(const lattice::Structure& s,
                           eam::EamPotentialPtr potential,
                           ShardedWaferConfig config)
    : WaferEngine(s, std::move(potential), config.wse),
      pool_(resolve_threads(config.threads)) {
  // Same partition the distributed backend uses for rank strips — one
  // function, one modeled ghost-cost formula (dist::domain).
  shards_ = dist::row_strips(md_.mapping().grid_width(),
                             md_.mapping().grid_height(), pool_.size());
  shard_stats_.resize(shards_.size());
  cum_load_.resize(shards_.size());
}

void ShardedWafer::run_sharded(const std::function<void(int)>& task) {
  if (!telemetry::enabled()) {
    pool_.run(task);
    return;
  }
  busy_seconds_.assign(static_cast<std::size_t>(pool_.size()), 0.0);
  const auto round_start = std::chrono::steady_clock::now();
  pool_.run([&](int t) {
    const auto busy_start = std::chrono::steady_clock::now();
    task(t);
    busy_seconds_[static_cast<std::size_t>(t)] = seconds_since(busy_start);
  });
  const double round = seconds_since(round_start);
  // Each worker waits from the end of its own work until the slowest one
  // finishes the round (the implicit barrier between pool_.run calls).
  double wait = 0.0;
  for (std::size_t t = 0; t < busy_seconds_.size(); ++t) {
    const double busy = busy_seconds_[t];
    const double worker_wait = std::max(0.0, round - busy);
    cum_load_[t].busy_seconds += busy;
    cum_load_[t].wait_seconds += worker_wait;
    wait += worker_wait;
  }
  telemetry::add_span_time("shard.barrier_wait", wait,
                           static_cast<std::uint64_t>(pool_.size()));
}

Thermo ShardedWafer::step() {
  md_.begin_step(ws_);
  run_sharded([&](int t) {
    md_.density_phase(shards_[static_cast<std::size_t>(t)], ws_);
  });
  // Implicit barrier: every F' is published before any force kernel reads.
  run_sharded([&](int t) {
    const auto& shard = shards_[static_cast<std::size_t>(t)];
    md_.force_phase(shard, ws_);
    shard_stats_[static_cast<std::size_t>(t)] = md_.reduce_region(shard, ws_);
  });
  // Serial tail: commit integrated state and reduce in row-major order so
  // results are bitwise independent of the decomposition.
  const bool swap_now = md_.commit_step(ws_);
  std::size_t applied = 0;
  if (swap_now) {
    run_sharded([&](int t) {
      md_.swap_select(shards_[static_cast<std::size_t>(t)], ws_.partner);
    });
    applied = md_.swap_commit(ws_.partner);
  }
  last_ = md_.finish_step(ws_, applied, swap_now);
  return thermo();
}

Thermo ShardedWafer::run(long n, const StepCallback& callback) {
  // Bypass WaferEngine::run (which drives the serial md_.run path) in
  // favor of the base step() loop, which dispatches to the sharded step.
  return Engine::run(n, callback);
}

ModeledPhaseCost ShardedWafer::modeled_phase_cost() const {
  ModeledPhaseCost cost = WaferEngine::modeled_phase_cost();
  if (!cost.valid) return cost;
  cost.halo_seconds = halo_cycles_per_step() *
                      static_cast<double>(cost.steps) /
                      (md_.config().cost_model.clock_ghz() * 1e9);
  return cost;
}

double ShardedWafer::halo_cycles_per_step() const {
  return dist::halo_cycles_per_step(shards_, md_.b(),
                                    md_.mapping().grid_width(),
                                    md_.mapping().grid_height(),
                                    md_.config().cost_model);
}

}  // namespace wsmd::engine
