#pragma once

/// \file wafer_engine.hpp
/// Engine adapter for the serial wafer-scale engine (core::WseMd).
///
/// Exposes the one-atom-per-core FP32 engine behind the unified Engine
/// interface and keeps the modeled wafer accounting (WseStepStats,
/// elapsed modeled seconds) reachable for benches. ShardedWafer derives
/// from this adapter and replaces the serial sweep with per-thread shards.

#include "core/wse_md.hpp"
#include "engine/engine.hpp"

namespace wsmd::engine {

class WaferEngine : public Engine {
 public:
  WaferEngine(const lattice::Structure& s, eam::EamPotentialPtr potential,
              core::WseMdConfig config = {});

  core::WseMd& wafer() { return md_; }
  const core::WseMd& wafer() const { return md_; }

  /// Accounting of the most recent step (zeroed before the first step).
  const core::WseStepStats& last_step_stats() const { return last_; }

  const char* backend_name() const override { return "wafer-serial"; }
  /// Cost-model phase breakdown from the run's cumulative candidate /
  /// interaction counts (wse::CostModel Table V basis). ShardedWafer
  /// extends it with the modeled halo-exchange cost.
  ModeledPhaseCost modeled_phase_cost() const override;
  std::size_t atom_count() const override { return md_.atom_count(); }
  long step_count() const override { return md_.step_count(); }
  std::vector<Vec3d> positions() const override { return md_.positions(); }
  std::vector<Vec3d> velocities() const override { return md_.velocities(); }
  void set_velocities(const std::vector<Vec3d>& v) override {
    md_.set_velocities(v);
  }
  void set_positions(const std::vector<Vec3d>& r) override {
    md_.set_positions(r);
  }
  State snapshot() const override;
  void restore(const State& state) override;
  void thermalize(double temperature_K, Rng& rng) override {
    md_.thermalize(temperature_K, rng);
  }
  Thermo step() override;
  Thermo run(long n, const StepCallback& callback = {}) override;
  Thermo thermo() const override;

 protected:
  core::WseMd md_;
  core::WseStepStats last_;
};

}  // namespace wsmd::engine
