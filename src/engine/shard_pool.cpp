#include "engine/shard_pool.hpp"

#include <string>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace wsmd::engine {

ShardPool::ShardPool(int workers) : workers_(workers) {
  WSMD_REQUIRE(workers >= 1, "pool needs at least one worker");
  errors_.assign(static_cast<std::size_t>(workers_), nullptr);
  if (workers_ == 1) return;  // inline execution, no threads
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int t = 0; t < workers_; ++t) {
    threads_.emplace_back([this, t] { worker_loop(t); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& th : threads_) th.join();
}

void ShardPool::run(const std::function<void(int)>& task) {
  if (threads_.empty()) {
    task(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    remaining_ = workers_;
    for (auto& e : errors_) e = nullptr;
    ++generation_;
  }
  work_ready_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    round_done_.wait(lock, [this] { return remaining_ == 0; });
    task_ = nullptr;
  }
  for (const auto& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

void ShardPool::worker_loop(int index) {
  // Stable telemetry merge identity: exports are keyed by thread name, so
  // two identical runs produce identical event groupings regardless of
  // which OS thread gets which index.
  telemetry::set_thread_name("shard" + std::to_string(index));
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    try {
      (*task)(index);
    } catch (...) {
      errors_[static_cast<std::size_t>(index)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --remaining_;
    }
    round_done_.notify_one();
  }
}

}  // namespace wsmd::engine
