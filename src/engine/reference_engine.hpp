#pragma once

/// \file reference_engine.hpp
/// Engine adapter for the FP64 reference simulator (md::Simulation).
///
/// The "LAMMPS role" backend: Verlet-list FP64 trajectories, used as ground
/// truth by the cross-engine equivalence tests and as the CPU baseline the
/// platform models calibrate against. The adapter keeps md::Simulation's
/// semantics — forces are computed on demand, thermo() reports the
/// synchronized (half-kick corrected) kinetic energy.

#include "engine/engine.hpp"
#include "md/simulation.hpp"

namespace wsmd::engine {

class ReferenceEngine final : public Engine {
 public:
  ReferenceEngine(const lattice::Structure& s, eam::EamPotentialPtr potential,
                  md::SimulationConfig config = {});
  /// Adopt an existing simulation (e.g. one already equilibrated).
  explicit ReferenceEngine(md::Simulation sim);

  md::Simulation& simulation() { return sim_; }
  const md::Simulation& simulation() const { return sim_; }

  const char* backend_name() const override { return "reference-fp64"; }
  std::size_t atom_count() const override { return sim_.system().size(); }
  long step_count() const override { return sim_.step_count(); }
  std::vector<Vec3d> positions() const override;
  std::vector<Vec3d> velocities() const override;
  void set_velocities(const std::vector<Vec3d>& v) override;
  void set_positions(const std::vector<Vec3d>& r) override;
  State snapshot() const override;
  void restore(const State& state) override;
  void thermalize(double temperature_K, Rng& rng) override;
  Thermo step() override;
  Thermo run(long n, const StepCallback& callback = {}) override;
  Thermo thermo() const override;

 private:
  md::Simulation sim_;
};

}  // namespace wsmd::engine
