#pragma once

/// \file checkpoint.hpp
/// Durable checkpoint/restart for long-timescale runs.
///
/// The paper's point is trajectories too long for any single uninterrupted
/// process, so `wsmd` must be able to stop and continue: a checkpoint is a
/// versioned, endian-tagged binary file holding the *complete* dynamic
/// state of a run — step counter, box, species, FP64-widened positions and
/// velocities, the backend's auxiliaries (Verlet-list anchor for the
/// reference engine; atom-to-core mapping, neighborhood radius, committed
/// potential energy, and modeled clock for the wafer engines), the PRNG
/// stream, the runner's per-stage schedule cursor, and every streaming
/// probe's accumulators. Restoring it reproduces the uninterrupted
/// trajectory bit-for-bit on the same backend (cf. LAMMPS restart files,
/// whose role this plays in the baseline-platform lineage).
///
/// Format: "WSMDCKPT" magic, u32 version, u32 endian tag (0x01020304 in
/// native order — a foreign-endian file is rejected instead of silently
/// misread), then the fixed field sequence below, closed by an end marker
/// so even a truncation inside the final field is detected. Files are
/// written atomically (tmp + rename): a run killed mid-write never leaves
/// a half checkpoint behind.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "util/box.hpp"
#include "util/random.hpp"
#include "util/vec3.hpp"

namespace wsmd::io {

/// Current checkpoint format version. Bump on any layout change — or any
/// change to the embedded deck's semantics; readers reject other versions
/// with a clear error instead of guessing.
///
/// v2: the embedded deck pins `potential` / `pair_style`. A v1 checkpoint
/// carries neither, and the runs that wrote it evaluated forces through
/// the then-only analytic path — resolving the missing key to today's
/// `tabulated` default would silently switch the evaluation kernels under
/// a resumed trajectory, so v1 files are rejected instead.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Little typed writer over a binary ostream. Strings and vectors are
/// length-prefixed (u64); floating point is bit-copied, so FP64 state
/// round-trips exactly.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& s);
  void vec3s(const std::vector<Vec3d>& v);
  void longs(const std::vector<long>& v);
  void ints(const std::vector<int>& v);
  void f64s(const std::vector<double>& v);

 private:
  std::ostream& os_;
};

/// Reader counterpart. Every primitive read checks the stream and throws
/// wsmd::Error mentioning `context` (the file path) on truncation, and
/// length prefixes are sanity-bounded so a corrupt file fails with a clear
/// message instead of a multi-gigabyte allocation.
class BinaryReader {
 public:
  BinaryReader(std::istream& is, std::string context)
      : is_(is), context_(std::move(context)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::string str();
  std::vector<Vec3d> vec3s();
  std::vector<long> longs();
  std::vector<int> ints();
  std::vector<double> f64s();

  const std::string& context() const { return context_; }

 private:
  void raw(void* out, std::size_t bytes);
  std::uint64_t bounded_count(std::uint64_t limit, const char* what);

  std::istream& is_;
  std::string context_;
};

/// Everything a resumed run needs. The effective scenario travels along as
/// canonical deck entries so `wsmd resume CKPT` is self-contained — the
/// original deck file is not needed (and CLI overrides of the original run
/// are already baked in).
struct CheckpointData {
  std::string element;  ///< for mismatch diagnostics on resume
  std::string backend;  ///< backend that wrote the checkpoint (info only)
  Box box;
  std::vector<int> types;

  /// The effective scenario as (key, value) deck entries, in deck order.
  std::vector<std::pair<std::string, std::string>> deck;

  /// Full engine dynamic state (engine::Engine::snapshot()).
  engine::State engine;

  /// Schedule cursor: index of the stage in progress and steps already
  /// completed inside it. A cursor at (i, stage[i].steps) means the stage
  /// just finished; resume continues with stage i+1.
  std::uint64_t stage_index = 0;
  long stage_steps_done = 0;

  RngState rng;  ///< the runner's thermostat-stage stream

  /// Output cursors (the runner's duplicate-suppression state for the
  /// final-step top-off).
  long last_frame_step = -1;
  long last_sample_step = -1;

  /// Streaming-probe accumulators: (kind, opaque blob) in bus order.
  std::vector<std::pair<std::string, std::string>> probes;
};

void write_checkpoint(std::ostream& os, const CheckpointData& data);
CheckpointData read_checkpoint(std::istream& is, const std::string& context);

/// Atomic file write: the checkpoint is streamed to `path + ".tmp"` and
/// renamed over `path`, so a kill mid-write never corrupts the previous
/// checkpoint.
void write_checkpoint_file(const std::string& path,
                           const CheckpointData& data);
CheckpointData read_checkpoint_file(const std::string& path);

}  // namespace wsmd::io
