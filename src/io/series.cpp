#include "io/series.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/bench_json.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::io {

SeriesWriter::SeriesWriter(const std::string& path, ThermoFormat format,
                           std::vector<std::string> columns)
    : path_(path),
      columns_(std::move(columns)),
      os_(std::make_unique<std::ofstream>(path)),
      format_(format) {
  WSMD_REQUIRE(!columns_.empty(), "series needs at least one column");
  WSMD_REQUIRE(os_->good(), "cannot open '" << path_ << "' for writing");
  for (const auto& c : columns_) {
    WSMD_REQUIRE(!c.empty() && c.find(',') == std::string::npos &&
                     c.find('"') == std::string::npos,
                 "bad series column name '" << c << "'");
  }
  if (format_ == ThermoFormat::kCsv) {
    for (std::size_t k = 0; k < columns_.size(); ++k) {
      *os_ << (k ? "," : "") << columns_[k];
    }
    *os_ << '\n';
  }
}

SeriesWriter::~SeriesWriter() {
  // Last-chance flush for callers that never called finish(); failures are
  // warned about but must not throw from a destructor.
  if (!finished_) finish();
}

void SeriesWriter::note_failure(const char* what) {
  if (!failed_) {
    std::fprintf(stderr,
                 "wsmd: warning: series %s failed for '%s' — output is "
                 "incomplete (disk full or stream closed?)\n",
                 what, path_.c_str());
  }
  failed_ = true;
}

void SeriesWriter::write_row(const std::vector<double>& values) {
  WSMD_REQUIRE(values.size() == columns_.size(),
               "series row with " << values.size() << " values, expected "
                                  << columns_.size() << " (" << path_ << ")");
  for (std::size_t k = 0; k < values.size(); ++k) {
    WSMD_REQUIRE(std::isfinite(values[k]),
                 "non-finite value for column '" << columns_[k] << "' in "
                                                 << path_);
  }
  if (format_ == ThermoFormat::kCsv) {
    std::ostringstream row;
    row.precision(17);
    for (std::size_t k = 0; k < values.size(); ++k) {
      row << (k ? "," : "") << values[k];
    }
    *os_ << row.str() << '\n';
  } else {
    JsonObject obj;
    for (std::size_t k = 0; k < values.size(); ++k) {
      obj.set(columns_[k], values[k]);
    }
    *os_ << obj.encode() << '\n';
  }
  if (!os_->good()) {
    note_failure("write");
    return;  // count only rows that reached the stream intact
  }
  ++rows_;
}

void SeriesWriter::flush() {
  if (finished_) return;
  os_->flush();
  if (!os_->good()) note_failure("flush");
}

bool SeriesWriter::finish() {
  if (!finished_) {
    flush();
    finished_ = true;
    os_->close();
    if (os_->fail()) note_failure("close");
  }
  return !failed_;
}

std::size_t Series::column_index(const std::string& name) const {
  for (std::size_t k = 0; k < columns.size(); ++k) {
    if (columns[k] == name) return k;
  }
  WSMD_REQUIRE(false, "series has no column '" << name << "'");
  return 0;  // unreachable
}

Series read_series_csv(std::istream& is) {
  Series out;
  std::string line;
  WSMD_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "empty series CSV (no header)");
  for (auto& c : split(trim(line), ',')) {
    WSMD_REQUIRE(!trim(c).empty(), "empty column name in series header");
    out.columns.push_back(trim(c));
  }
  while (std::getline(is, line)) {
    if (trim(line).empty()) continue;
    const auto fields = split(line, ',');
    WSMD_REQUIRE(fields.size() == out.columns.size(),
                 "series row with " << fields.size() << " fields, expected "
                                    << out.columns.size() << ": '" << line
                                    << "'");
    std::vector<double> row(fields.size());
    for (std::size_t k = 0; k < fields.size(); ++k) {
      WSMD_REQUIRE(parse_double_strict(fields[k], row[k]) &&
                       std::isfinite(row[k]),
                   "malformed series value '" << fields[k] << "' in '" << line
                                              << "'");
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Series read_series_csv_file(const std::string& path) {
  std::ifstream is(path);
  WSMD_REQUIRE(is.good(), "cannot open series CSV '" << path << "'");
  return read_series_csv(is);
}

}  // namespace wsmd::io
