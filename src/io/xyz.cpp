#include "io/xyz.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "util/error.hpp"

namespace wsmd::io {

void write_xyz_frame(std::ostream& os, const lattice::Structure& s,
                     const std::vector<std::string>& names,
                     const std::string& comment) {
  os << s.size() << '\n';
  const Vec3d len = s.box.lengths();
  os << "Lattice=\"" << len.x << " 0 0 0 " << len.y << " 0 0 0 " << len.z
     << "\" Properties=species:S:1:pos:R:3";
  if (!comment.empty()) os << ' ' << comment;
  os << '\n';
  os << std::setprecision(10);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto t = static_cast<std::size_t>(s.types[i]);
    WSMD_REQUIRE(t < names.size(), "atom type without a species name");
    os << names[t] << ' ' << s.positions[i].x << ' ' << s.positions[i].y << ' '
       << s.positions[i].z << '\n';
  }
}

void write_xyz_file(const std::string& path, const lattice::Structure& s,
                    const std::vector<std::string>& names,
                    const std::string& comment) {
  std::ofstream os(path);
  WSMD_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  write_xyz_frame(os, s, names, comment);
  WSMD_REQUIRE(os.good(), "write to '" << path << "' failed");
}

void write_lammps_dump_frame(std::ostream& os, const lattice::Structure& s,
                             long timestep) {
  os << "ITEM: TIMESTEP\n" << timestep << '\n';
  os << "ITEM: NUMBER OF ATOMS\n" << s.size() << '\n';
  os << "ITEM: BOX BOUNDS";
  for (std::size_t a = 0; a < 3; ++a) {
    os << (s.box.periodic[a] ? " pp" : " ff");
  }
  os << '\n';
  os << s.box.lo.x << ' ' << s.box.hi.x << '\n';
  os << s.box.lo.y << ' ' << s.box.hi.y << '\n';
  os << s.box.lo.z << ' ' << s.box.hi.z << '\n';
  os << "ITEM: ATOMS id type x y z\n";
  os << std::setprecision(10);
  for (std::size_t i = 0; i < s.size(); ++i) {
    os << (i + 1) << ' ' << (s.types[i] + 1) << ' ' << s.positions[i].x << ' '
       << s.positions[i].y << ' ' << s.positions[i].z << '\n';
  }
}

}  // namespace wsmd::io
