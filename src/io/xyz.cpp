#include "io/xyz.hpp"

#include <cmath>
#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::io {

void write_xyz_frame(std::ostream& os, const Box& box,
                     const std::vector<Vec3d>& positions,
                     const std::vector<int>& types,
                     const std::vector<std::string>& names,
                     const std::string& comment) {
  WSMD_REQUIRE(positions.size() == types.size(),
               "positions/types size mismatch: " << positions.size() << " vs "
                                                 << types.size());
  // Validate before emitting anything: throwing mid-frame would leave a
  // truncated frame on disk that the reader (rightly) rejects wholesale.
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3d& r = positions[i];
    WSMD_REQUIRE(std::isfinite(r.x) && std::isfinite(r.y) &&
                     std::isfinite(r.z),
                 "non-finite position for atom " << i << " (" << r.x << ", "
                                                 << r.y << ", " << r.z
                                                 << ")");
    WSMD_REQUIRE(static_cast<std::size_t>(types[i]) < names.size(),
                 "atom type without a species name");
  }
  const auto saved_precision = os.precision(10);  // cell and positions alike
  os << positions.size() << '\n';
  const Vec3d len = box.lengths();
  os << "Lattice=\"" << len.x << " 0 0 0 " << len.y << " 0 0 0 " << len.z
     << "\" Properties=species:S:1:pos:R:3";
  if (!comment.empty()) os << ' ' << comment;
  os << '\n';
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Vec3d& r = positions[i];
    os << names[static_cast<std::size_t>(types[i])] << ' ' << r.x << ' '
       << r.y << ' ' << r.z << '\n';
  }
  os.precision(saved_precision);
}

void write_xyz_frame(std::ostream& os, const lattice::Structure& s,
                     const std::vector<std::string>& names,
                     const std::string& comment) {
  write_xyz_frame(os, s.box, s.positions, s.types, names, comment);
}

void write_xyz_file(const std::string& path, const lattice::Structure& s,
                    const std::vector<std::string>& names,
                    const std::string& comment) {
  std::ofstream os(path);
  WSMD_REQUIRE(os.good(), "cannot open '" << path << "' for writing");
  write_xyz_frame(os, s, names, comment);
  WSMD_REQUIRE(os.good(), "write to '" << path << "' failed");
}

void write_lammps_dump_frame(std::ostream& os, const lattice::Structure& s,
                             long timestep) {
  const auto saved_precision = os.precision(10);
  os << "ITEM: TIMESTEP\n" << timestep << '\n';
  os << "ITEM: NUMBER OF ATOMS\n" << s.size() << '\n';
  os << "ITEM: BOX BOUNDS";
  for (std::size_t a = 0; a < 3; ++a) {
    os << (s.box.periodic[a] ? " pp" : " ff");
  }
  os << '\n';
  os << s.box.lo.x << ' ' << s.box.hi.x << '\n';
  os << s.box.lo.y << ' ' << s.box.hi.y << '\n';
  os << s.box.lo.z << ' ' << s.box.hi.z << '\n';
  os << "ITEM: ATOMS id type x y z\n";
  for (std::size_t i = 0; i < s.size(); ++i) {
    os << (i + 1) << ' ' << (s.types[i] + 1) << ' ' << s.positions[i].x << ' '
       << s.positions[i].y << ' ' << s.positions[i].z << '\n';
  }
  os.precision(saved_precision);
}

std::vector<XyzFrame> read_xyz(std::istream& is) {
  std::vector<XyzFrame> frames;
  std::string line;
  while (std::getline(is, line)) {
    if (trim(line).empty()) continue;  // tolerate trailing blank lines
    long count = -1;
    WSMD_REQUIRE(parse_long_strict(trim(line), count) && count >= 0,
                 "expected atom count, got '" << line << "'");
    const auto natoms = static_cast<std::size_t>(count);
    XyzFrame frame;
    WSMD_REQUIRE(static_cast<bool>(std::getline(is, frame.comment)),
                 "truncated XYZ frame: missing comment line");
    frame.species.reserve(natoms);
    frame.positions.reserve(natoms);
    for (std::size_t i = 0; i < natoms; ++i) {
      WSMD_REQUIRE(static_cast<bool>(std::getline(is, line)),
                   "truncated XYZ frame: " << i << " of " << natoms
                                           << " atom rows");
      const auto fields = split_whitespace(line);
      WSMD_REQUIRE(fields.size() >= 4,
                   "bad XYZ atom row '" << line << "'");
      Vec3d r;
      WSMD_REQUIRE(parse_double_strict(fields[1], r.x) &&
                       parse_double_strict(fields[2], r.y) &&
                       parse_double_strict(fields[3], r.z),
                   "bad XYZ atom row '" << line << "'");
      WSMD_REQUIRE(std::isfinite(r.x) && std::isfinite(r.y) &&
                       std::isfinite(r.z),
                   "non-finite position in XYZ row '" << line << "'");
      frame.species.push_back(fields[0]);
      frame.positions.push_back(r);
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<XyzFrame> read_xyz_file(const std::string& path) {
  std::ifstream is(path);
  WSMD_REQUIRE(is.good(), "cannot open XYZ file '" << path << "'");
  return read_xyz(is);
}

}  // namespace wsmd::io
