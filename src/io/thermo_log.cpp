#include "io/thermo_log.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/bench_json.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace wsmd::io {

namespace {

constexpr const char* kCsvHeader =
    "step,potential_eV,kinetic_eV,total_eV,temperature_K";

void require_finite(const ThermoSample& s) {
  WSMD_REQUIRE(std::isfinite(s.potential_energy) &&
                   std::isfinite(s.kinetic_energy) &&
                   std::isfinite(s.total_energy) &&
                   std::isfinite(s.temperature),
               "non-finite thermo sample at step " << s.step
                   << " (pe=" << s.potential_energy
                   << " ke=" << s.kinetic_energy << " T=" << s.temperature
                   << ")");
}

}  // namespace

ThermoFormat thermo_format_from_name(const std::string& name) {
  if (name == "csv") return ThermoFormat::kCsv;
  if (name == "jsonl" || name == "json") return ThermoFormat::kJsonLines;
  WSMD_REQUIRE(false, "unknown thermo format '" << name
                                                << "' (want csv|jsonl)");
  return ThermoFormat::kCsv;  // unreachable
}

ThermoLogger::ThermoLogger(std::ostream& os, ThermoFormat format)
    : os_(&os), format_(format) {
  if (format_ == ThermoFormat::kCsv) *os_ << kCsvHeader << '\n';
}

ThermoLogger::ThermoLogger(const std::string& path, ThermoFormat format)
    : owned_(std::make_unique<std::ofstream>(path)), format_(format) {
  os_ = owned_.get();
  WSMD_REQUIRE(os_->good(), "cannot open '" << path << "' for writing");
  if (format_ == ThermoFormat::kCsv) *os_ << kCsvHeader << '\n';
}

ThermoLogger::~ThermoLogger() = default;

void ThermoLogger::write(const ThermoSample& s) {
  require_finite(s);
  WSMD_REQUIRE(written_ == 0 || s.step >= last_step_,
               "thermo step went backwards: " << last_step_ << " -> "
                                              << s.step);
  if (format_ == ThermoFormat::kCsv) {
    std::ostringstream row;
    row.precision(17);
    row << s.step << ',' << s.potential_energy << ',' << s.kinetic_energy
        << ',' << s.total_energy << ',' << s.temperature;
    *os_ << row.str() << '\n';
  } else {
    JsonObject obj;
    obj.set("step", static_cast<long long>(s.step))
        .set("potential_eV", s.potential_energy)
        .set("kinetic_eV", s.kinetic_energy)
        .set("total_eV", s.total_energy)
        .set("temperature_K", s.temperature);
    *os_ << obj.encode() << '\n';
  }
  WSMD_REQUIRE(os_->good(), "thermo log write failed at step " << s.step);
  last_step_ = s.step;
  ++written_;
}

std::vector<ThermoSample> read_thermo_csv(std::istream& is) {
  std::string line;
  WSMD_REQUIRE(static_cast<bool>(std::getline(is, line)),
               "empty thermo CSV (no header)");
  WSMD_REQUIRE(trim(line) == kCsvHeader,
               "unexpected thermo CSV header '" << line << "'");
  std::vector<ThermoSample> out;
  while (std::getline(is, line)) {
    if (trim(line).empty()) continue;
    const auto fields = split(line, ',');
    WSMD_REQUIRE(fields.size() == 5, "thermo CSV row with " << fields.size()
                                         << " fields: '" << line << "'");
    ThermoSample s;
    // Full-consumption parsing: trailing garbage in a field (e.g. a bad
    // merge) must fail loudly, not silently truncate a golden value.
    const bool clean = parse_long_strict(fields[0], s.step) &&
                       parse_double_strict(fields[1], s.potential_energy) &&
                       parse_double_strict(fields[2], s.kinetic_energy) &&
                       parse_double_strict(fields[3], s.total_energy) &&
                       parse_double_strict(fields[4], s.temperature);
    WSMD_REQUIRE(clean, "malformed thermo CSV row '" << line << "'");
    require_finite(s);
    out.push_back(s);
  }
  return out;
}

std::vector<ThermoSample> read_thermo_csv_file(const std::string& path) {
  std::ifstream is(path);
  WSMD_REQUIRE(is.good(), "cannot open thermo CSV '" << path << "'");
  return read_thermo_csv(is);
}

}  // namespace wsmd::io
