#include "io/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "util/error.hpp"

namespace wsmd::io {

namespace {

constexpr char kMagic[8] = {'W', 'S', 'M', 'D', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kEndMarker = 0xC0DAC0DAu;

// Length-prefix sanity bounds: a corrupt prefix must fail loudly with a
// "corrupt checkpoint" error, not disappear into a huge zero-initialized
// allocation and an OOM kill. 10^8 elements (~2.4 GB as Vec3d) sits two
// orders of magnitude above the paper's 800k-atom runs while keeping the
// worst corrupt-prefix allocation survivable.
constexpr std::uint64_t kMaxAtoms = 100'000'000;  // elements per vector
constexpr std::uint64_t kMaxString = 1ull << 30;  // bytes (probe blobs)

}  // namespace

void BinaryWriter::u8(std::uint8_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::u32(std::uint32_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::u64(std::uint64_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::i32(std::int32_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::i64(std::int64_t v) {
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::f64(double v) {
  static_assert(sizeof(double) == 8);
  os_.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  os_.write(s.data(), static_cast<std::streamsize>(s.size()));
}
// The array payloads are bulk-copied: one write/read per vector, not per
// scalar (at 800k atoms a checkpoint holds ~10M scalars — per-element
// iostream calls would add a measurable stall to every periodic write).
// Byte-identical to the element-wise encoding: contiguous fixed-size
// elements, and the endian tag already pins the byte order.
static_assert(sizeof(Vec3d) == 3 * sizeof(double),
              "Vec3d must be three packed doubles for bulk checkpoint I/O");
static_assert(sizeof(long) == 8, "the format stores 64-bit integers");

void BinaryWriter::vec3s(const std::vector<Vec3d>& v) {
  u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(Vec3d)));
}
void BinaryWriter::longs(const std::vector<long>& v) {
  u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(long)));
}
void BinaryWriter::ints(const std::vector<int>& v) {
  u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(int)));
}
void BinaryWriter::f64s(const std::vector<double>& v) {
  u64(v.size());
  os_.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

void BinaryReader::raw(void* out, std::size_t bytes) {
  is_.read(static_cast<char*>(out), static_cast<std::streamsize>(bytes));
  WSMD_REQUIRE(static_cast<std::size_t>(is_.gcount()) == bytes && !is_.fail(),
               context_ << ": truncated checkpoint (wanted " << bytes
                        << " more byte(s))");
}

std::uint64_t BinaryReader::bounded_count(std::uint64_t limit,
                                          const char* what) {
  const std::uint64_t n = u64();
  WSMD_REQUIRE(n <= limit, context_ << ": corrupt checkpoint (" << what
                                    << " count " << n << " exceeds " << limit
                                    << ")");
  return n;
}

std::uint8_t BinaryReader::u8() {
  std::uint8_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::uint32_t BinaryReader::u32() {
  std::uint32_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::u64() {
  std::uint64_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::int32_t BinaryReader::i32() {
  std::int32_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::i64() {
  std::int64_t v = 0;
  raw(&v, sizeof v);
  return v;
}
double BinaryReader::f64() {
  double v = 0.0;
  raw(&v, sizeof v);
  return v;
}
std::string BinaryReader::str() {
  const std::uint64_t n = bounded_count(kMaxString, "string byte");
  std::string s(static_cast<std::size_t>(n), '\0');
  if (n > 0) raw(s.data(), static_cast<std::size_t>(n));
  return s;
}
std::vector<Vec3d> BinaryReader::vec3s() {
  const std::uint64_t n = bounded_count(kMaxAtoms, "vector element");
  std::vector<Vec3d> v(static_cast<std::size_t>(n));
  if (n > 0) raw(v.data(), static_cast<std::size_t>(n) * sizeof(Vec3d));
  return v;
}
std::vector<long> BinaryReader::longs() {
  const std::uint64_t n = bounded_count(kMaxAtoms, "vector element");
  std::vector<long> v(static_cast<std::size_t>(n));
  if (n > 0) raw(v.data(), static_cast<std::size_t>(n) * sizeof(long));
  return v;
}
std::vector<int> BinaryReader::ints() {
  const std::uint64_t n = bounded_count(kMaxAtoms, "vector element");
  std::vector<int> v(static_cast<std::size_t>(n));
  if (n > 0) raw(v.data(), static_cast<std::size_t>(n) * sizeof(int));
  return v;
}
std::vector<double> BinaryReader::f64s() {
  const std::uint64_t n = bounded_count(kMaxAtoms, "vector element");
  std::vector<double> v(static_cast<std::size_t>(n));
  if (n > 0) raw(v.data(), static_cast<std::size_t>(n) * sizeof(double));
  return v;
}

void write_checkpoint(std::ostream& os, const CheckpointData& data) {
  BinaryWriter w(os);
  os.write(kMagic, sizeof kMagic);
  w.u32(kCheckpointVersion);
  w.u32(kEndianTag);

  w.str(data.element);
  w.str(data.backend);
  for (std::size_t a = 0; a < 3; ++a) w.f64(data.box.lo[a]);
  for (std::size_t a = 0; a < 3; ++a) w.f64(data.box.hi[a]);
  for (std::size_t a = 0; a < 3; ++a) w.u8(data.box.periodic[a] ? 1 : 0);
  w.ints(data.types);

  w.u64(data.deck.size());
  for (const auto& [key, value] : data.deck) {
    w.str(key);
    w.str(value);
  }

  const engine::State& e = data.engine;
  w.i64(e.step);
  w.vec3s(e.positions);
  w.vec3s(e.velocities);
  w.vec3s(e.neighbor_anchor);
  w.u8(e.has_wafer ? 1 : 0);
  if (e.has_wafer) {
    w.f64(e.potential_energy);
    w.f64(e.elapsed_seconds);
    w.i32(e.grid_width);
    w.i32(e.grid_height);
    w.i32(e.b);
    w.longs(e.core_atoms);
    w.vec3s(e.initial_positions);
  }

  w.u64(data.stage_index);
  w.i64(data.stage_steps_done);
  for (std::size_t k = 0; k < 4; ++k) w.u64(data.rng.s[k]);
  w.u8(data.rng.has_spare ? 1 : 0);
  w.f64(data.rng.spare);
  w.i64(data.last_frame_step);
  w.i64(data.last_sample_step);

  w.u64(data.probes.size());
  for (const auto& [kind, blob] : data.probes) {
    w.str(kind);
    w.str(blob);
  }
  w.u32(kEndMarker);
  os.flush();
  WSMD_REQUIRE(os.good(), "checkpoint write failed (disk full?)");
}

CheckpointData read_checkpoint(std::istream& is, const std::string& context) {
  BinaryReader r(is, context);
  char magic[sizeof kMagic] = {};
  is.read(magic, sizeof magic);
  WSMD_REQUIRE(is.gcount() == sizeof magic &&
                   std::memcmp(magic, kMagic, sizeof kMagic) == 0,
               context << ": not a WSMD checkpoint (bad magic)");
  const std::uint32_t version = r.u32();
  WSMD_REQUIRE(version == kCheckpointVersion,
               context << ": checkpoint format version " << version
                       << " is not supported (this build reads version "
                       << kCheckpointVersion << ")");
  const std::uint32_t endian = r.u32();
  WSMD_REQUIRE(endian == kEndianTag,
               context << ": checkpoint was written on a foreign-endian "
                          "machine (tag 0x"
                       << std::hex << endian << ")");

  CheckpointData data;
  data.element = r.str();
  data.backend = r.str();
  Vec3d lo, hi;
  for (std::size_t a = 0; a < 3; ++a) lo[a] = r.f64();
  for (std::size_t a = 0; a < 3; ++a) hi[a] = r.f64();
  std::array<bool, 3> periodic{};
  for (std::size_t a = 0; a < 3; ++a) periodic[a] = r.u8() != 0;
  data.box = Box(lo, hi, periodic);
  data.types = r.ints();

  const std::uint64_t deck_entries = r.u64();
  WSMD_REQUIRE(deck_entries <= 100000,
               context << ": corrupt checkpoint (deck entry count "
                       << deck_entries << ")");
  data.deck.reserve(static_cast<std::size_t>(deck_entries));
  for (std::uint64_t k = 0; k < deck_entries; ++k) {
    std::string key = r.str();
    std::string value = r.str();
    data.deck.emplace_back(std::move(key), std::move(value));
  }

  engine::State& e = data.engine;
  e.step = static_cast<long>(r.i64());
  e.positions = r.vec3s();
  e.velocities = r.vec3s();
  e.neighbor_anchor = r.vec3s();
  e.has_wafer = r.u8() != 0;
  if (e.has_wafer) {
    e.potential_energy = r.f64();
    e.elapsed_seconds = r.f64();
    e.grid_width = r.i32();
    e.grid_height = r.i32();
    e.b = r.i32();
    e.core_atoms = r.longs();
    e.initial_positions = r.vec3s();
  }

  data.stage_index = r.u64();
  data.stage_steps_done = static_cast<long>(r.i64());
  for (std::size_t k = 0; k < 4; ++k) data.rng.s[k] = r.u64();
  data.rng.has_spare = r.u8() != 0;
  data.rng.spare = r.f64();
  data.last_frame_step = static_cast<long>(r.i64());
  data.last_sample_step = static_cast<long>(r.i64());

  const std::uint64_t probe_count = r.u64();
  WSMD_REQUIRE(probe_count <= 1024,
               context << ": corrupt checkpoint (probe count " << probe_count
                       << ")");
  for (std::uint64_t k = 0; k < probe_count; ++k) {
    std::string kind = r.str();
    std::string blob = r.str();
    data.probes.emplace_back(std::move(kind), std::move(blob));
  }
  const std::uint32_t marker = r.u32();
  WSMD_REQUIRE(marker == kEndMarker,
               context << ": corrupt checkpoint (bad end marker)");

  WSMD_REQUIRE(e.positions.size() == data.types.size() &&
                   e.velocities.size() == data.types.size(),
               context << ": corrupt checkpoint (atom counts disagree: "
                       << e.positions.size() << " positions, "
                       << e.velocities.size() << " velocities, "
                       << data.types.size() << " types)");
  return data;
}

void write_checkpoint_file(const std::string& path,
                           const CheckpointData& data) {
  // The caller may expand placeholders (the runner's `*` -> step number)
  // into directory components, so the parent is created here, against the
  // final expanded path — not upstream against the pattern.
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    WSMD_REQUIRE(os.is_open(),
                 "cannot open checkpoint file '" << tmp << "' for writing");
    write_checkpoint(os, data);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  WSMD_REQUIRE(!ec, "cannot move checkpoint into place: " << tmp << " -> "
                                                          << path << ": "
                                                          << ec.message());
}

CheckpointData read_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  WSMD_REQUIRE(is.is_open(), "cannot open checkpoint file '" << path << "'");
  return read_checkpoint(is, path);
}

}  // namespace wsmd::io
