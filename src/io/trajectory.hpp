#pragma once

/// \file trajectory.hpp
/// Streaming multi-frame extended-XYZ trajectory writer.
///
/// The scenario driver appends one frame every `xyz_every` steps while an
/// engine runs; OVITO/VMD read the resulting file directly. Kept separate
/// from the single-frame helpers in xyz.hpp because a trajectory owns its
/// stream for the lifetime of a run.

#include <memory>
#include <string>
#include <vector>

#include "io/xyz.hpp"

namespace wsmd::io {

class XyzTrajectoryWriter {
 public:
  /// Open `path` (truncates). `names` maps type index -> chemical symbol
  /// for every frame of this trajectory.
  XyzTrajectoryWriter(const std::string& path,
                      std::vector<std::string> names);
  ~XyzTrajectoryWriter();

  XyzTrajectoryWriter(const XyzTrajectoryWriter&) = delete;
  XyzTrajectoryWriter& operator=(const XyzTrajectoryWriter&) = delete;

  /// Append one frame; throws on non-finite coordinates.
  void append(const Box& box, const std::vector<Vec3d>& positions,
              const std::vector<int>& types, const std::string& comment = "");

  std::size_t frames_written() const { return frames_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::vector<std::string> names_;
  std::unique_ptr<std::ofstream> os_;
  std::size_t frames_ = 0;
};

}  // namespace wsmd::io
