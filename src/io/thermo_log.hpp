#pragma once

/// \file thermo_log.hpp
/// Streaming thermodynamic log: one sample per (selected) timestep, written
/// as CSV or JSON-lines.
///
/// This is the quantity the golden-run regression harness pins down: a
/// scenario replayed on any backend must reproduce the recorded thermo
/// stream within tolerance. The writer validates every sample (NaN/inf are
/// rejected — a non-finite energy is always a bug upstream, and letting it
/// reach a golden file would poison every later comparison), and the CSV
/// reader round-trips what the writer emits.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace wsmd::io {

/// One thermodynamic sample (mirrors engine::Thermo without depending on
/// the engine layer).
struct ThermoSample {
  long step = 0;
  double potential_energy = 0.0;  ///< eV
  double kinetic_energy = 0.0;    ///< eV
  double total_energy = 0.0;      ///< eV
  double temperature = 0.0;       ///< K
};

/// Output encoding for ThermoLogger.
enum class ThermoFormat {
  kCsv,       ///< header + comma-separated rows
  kJsonLines  ///< one compact JSON object per line
};

ThermoFormat thermo_format_from_name(const std::string& name);

/// Streaming writer. The CSV header is written on construction; every
/// sample is validated (finite values, monotonically non-decreasing step).
class ThermoLogger {
 public:
  /// Write to an external stream (not owned).
  ThermoLogger(std::ostream& os, ThermoFormat format);
  /// Open `path` for writing (truncates).
  ThermoLogger(const std::string& path, ThermoFormat format);
  ~ThermoLogger();

  ThermoLogger(const ThermoLogger&) = delete;
  ThermoLogger& operator=(const ThermoLogger&) = delete;

  void write(const ThermoSample& sample);

  std::size_t samples_written() const { return written_; }
  ThermoFormat format() const { return format_; }

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_ = nullptr;
  ThermoFormat format_;
  std::size_t written_ = 0;
  long last_step_ = 0;
};

/// Parse a CSV thermo log (as emitted by ThermoLogger); validates the
/// header and that every value is finite.
std::vector<ThermoSample> read_thermo_csv(std::istream& is);
std::vector<ThermoSample> read_thermo_csv_file(const std::string& path);

}  // namespace wsmd::io
