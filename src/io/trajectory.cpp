#include "io/trajectory.hpp"

#include <fstream>

#include "util/error.hpp"

namespace wsmd::io {

XyzTrajectoryWriter::XyzTrajectoryWriter(const std::string& path,
                                         std::vector<std::string> names)
    : path_(path),
      names_(std::move(names)),
      os_(std::make_unique<std::ofstream>(path)) {
  WSMD_REQUIRE(os_->good(), "cannot open trajectory '" << path
                                                       << "' for writing");
  WSMD_REQUIRE(!names_.empty(), "trajectory needs at least one species name");
}

XyzTrajectoryWriter::~XyzTrajectoryWriter() = default;

void XyzTrajectoryWriter::append(const Box& box,
                                 const std::vector<Vec3d>& positions,
                                 const std::vector<int>& types,
                                 const std::string& comment) {
  write_xyz_frame(*os_, box, positions, types, names_, comment);
  WSMD_REQUIRE(os_->good(), "trajectory write to '" << path_ << "' failed");
  os_->flush();
  ++frames_;
}

}  // namespace wsmd::io
