#pragma once

/// \file xyz.hpp
/// Extended-XYZ trajectory output and LAMMPS-style dump writing.
///
/// Used by the examples and the `wsmd` scenario driver so users can inspect
/// slabs and grain boundaries in OVITO/VMD, the same tools used for figures
/// like the paper's Fig. 2. Writers reject non-finite coordinates (an atom
/// at NaN is always an upstream bug; a silent NaN in a trajectory file
/// poisons every later analysis), and the reader round-trips what the
/// writers emit.

#include <iosfwd>
#include <string>
#include <vector>

#include "lattice/lattice.hpp"
#include "util/box.hpp"
#include "util/vec3.hpp"

namespace wsmd::io {

/// Write one extended-XYZ frame from raw state. `names` maps type index ->
/// chemical symbol. Throws on non-finite coordinates.
void write_xyz_frame(std::ostream& os, const Box& box,
                     const std::vector<Vec3d>& positions,
                     const std::vector<int>& types,
                     const std::vector<std::string>& names,
                     const std::string& comment = "");

/// Write one XYZ frame of a generated structure.
void write_xyz_frame(std::ostream& os, const lattice::Structure& s,
                     const std::vector<std::string>& names,
                     const std::string& comment = "");

/// Convenience: write a single-frame .xyz file.
void write_xyz_file(const std::string& path, const lattice::Structure& s,
                    const std::vector<std::string>& names,
                    const std::string& comment = "");

/// Write a LAMMPS dump-style frame ("ITEM: TIMESTEP" etc., atom style
/// "id type x y z").
void write_lammps_dump_frame(std::ostream& os, const lattice::Structure& s,
                             long timestep);

/// One parsed XYZ frame (species as symbols; the comment line verbatim).
struct XyzFrame {
  std::string comment;
  std::vector<std::string> species;
  std::vector<Vec3d> positions;

  std::size_t size() const { return positions.size(); }
};

/// Parse a (possibly multi-frame) XYZ stream as emitted by the writers
/// above: atom count, comment line, then `symbol x y z` rows. Validates
/// counts and finiteness.
std::vector<XyzFrame> read_xyz(std::istream& is);
std::vector<XyzFrame> read_xyz_file(const std::string& path);

}  // namespace wsmd::io
