#pragma once

/// \file xyz.hpp
/// Extended-XYZ trajectory output and LAMMPS-style dump writing.
///
/// Used by the examples so users can inspect slabs and grain boundaries in
/// OVITO/VMD, the same tools used for figures like the paper's Fig. 2.

#include <iosfwd>
#include <string>
#include <vector>

#include "lattice/lattice.hpp"
#include "util/vec3.hpp"

namespace wsmd::io {

/// Write one XYZ frame. `names` maps type index -> chemical symbol.
void write_xyz_frame(std::ostream& os, const lattice::Structure& s,
                     const std::vector<std::string>& names,
                     const std::string& comment = "");

/// Convenience: write a single-frame .xyz file.
void write_xyz_file(const std::string& path, const lattice::Structure& s,
                    const std::vector<std::string>& names,
                    const std::string& comment = "");

/// Write a LAMMPS dump-style frame ("ITEM: TIMESTEP" etc., atom style
/// "id type x y z").
void write_lammps_dump_frame(std::ostream& os, const lattice::Structure& s,
                             long timestep);

}  // namespace wsmd::io
