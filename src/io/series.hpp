#pragma once

/// \file series.hpp
/// Generic streaming numeric series: named columns, one row per sample,
/// written as CSV or JSON-lines.
///
/// This is the output channel of the observables subsystem (src/obs): every
/// probe streams its per-sample values (MSD, defect counts, ...) or its
/// finish-time table (RDF g(r)) through a SeriesWriter, and the golden-run
/// harness reads the CSVs back for regression comparison. Like the thermo
/// log, non-finite values are rejected at the writer — a NaN observable is
/// always an upstream bug and must not poison a golden file.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "io/thermo_log.hpp"  // ThermoFormat (csv | jsonl)

namespace wsmd::io {

/// Streaming writer: fixed column schema, rows of doubles. CSV emits the
/// header on construction; JSONL emits one object per row keyed by the
/// column names.
///
/// Error model: caller bugs (bad schema, wrong arity, non-finite values)
/// throw — a NaN observable must never poison a golden file. Environment
/// failures of the underlying stream (ENOSPC, closed descriptor) do NOT
/// throw mid-run: the first one prints a warning to stderr and latches
/// `ok() == false`; subsequent rows are dropped. Callers check the stream
/// with `finish()` (or `ok()`) and surface the nonzero status — the old
/// behavior silently dropped flush failures on destruction.
class SeriesWriter {
 public:
  SeriesWriter(const std::string& path, ThermoFormat format,
               std::vector<std::string> columns);
  /// Flushes pending rows; a failure here warns (once) but never throws.
  ~SeriesWriter();

  SeriesWriter(const SeriesWriter&) = delete;
  SeriesWriter& operator=(const SeriesWriter&) = delete;

  /// Append one row; `values` must match the column count and be finite
  /// (throws otherwise). Stream failures latch ok() instead of throwing.
  void write_row(const std::vector<double>& values);

  /// Flush buffered rows to disk (probes call this from finish() so the
  /// file is complete while the probe object is still alive). A flush
  /// failure latches ok() == false.
  void flush();

  /// Flush and close the stream; returns the final health of the output
  /// (false when any write or flush failed). Idempotent — later calls
  /// return the same status without touching the closed stream.
  bool finish();

  /// False once any stream write/flush has failed; the file is incomplete.
  bool ok() const { return !failed_; }

  std::size_t rows_written() const { return rows_; }
  const std::string& path() const { return path_; }
  const std::vector<std::string>& columns() const { return columns_; }

 private:
  /// Latch the failure and warn on the first occurrence.
  void note_failure(const char* what);

  std::string path_;
  std::vector<std::string> columns_;
  std::unique_ptr<std::ofstream> os_;
  ThermoFormat format_;
  std::size_t rows_ = 0;
  bool failed_ = false;
  bool finished_ = false;
};

/// A fully parsed numeric series (the reader counterpart, used by the
/// golden-observable regression tests and `wsmd analyze` consumers).
struct Series {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;  ///< each sized like `columns`

  std::size_t column_index(const std::string& name) const;  ///< throws if absent
};

/// Parse a CSV series as emitted by SeriesWriter; validates the rectangular
/// shape and that every value is finite.
Series read_series_csv(std::istream& is);
Series read_series_csv_file(const std::string& path);

}  // namespace wsmd::io
