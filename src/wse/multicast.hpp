#pragma once

/// \file multicast.hpp
/// The systolic marching multicast (paper Sec. III-B, Figs. 3-4).
///
/// A neighborhood exchange makes every core receive the payloads of all
/// cores within Chebyshev distance b — the candidate-exchange step of the
/// wafer-scale MD timestep. It runs as two stages:
///
///   horizontal: every core's payload travels b hops left and right on two
///   virtual channels (positive- and negative-x), orchestrated in b+1
///   contention-free phases per the marching schedule;
///
///   vertical: the accumulated row data (2b+1 payloads per core) travels b
///   hops up and down on two more channels.
///
/// After both stages each core holds the payloads of its full (2b+1)^2
/// clipped square neighborhood (paper Fig. 3a).

#include <cstdint>
#include <vector>

#include "wse/fabric.hpp"

namespace wsmd::wse {

/// Virtual channel assignment for the exchange (paper: "Two virtual
/// channels are used in the horizontal stage; two others are used in the
/// vertical stage").
enum ExchangeVc : int {
  kVcEast = 0,   ///< positive-x data
  kVcWest = 1,   ///< negative-x data
  kVcSouth = 2,  ///< positive-y data
  kVcNorth = 3,  ///< negative-y data
  kNumExchangeVcs = 4,
};

struct ExchangeResult {
  /// gathered[y*width + x] = payload words of every core in the clipped
  /// (2b+1)^2 neighborhood of (x, y), own payload included, in the
  /// deterministic fabric arrival order.
  std::vector<std::vector<std::uint32_t>> gathered;
  std::uint64_t horizontal_cycles = 0;
  std::uint64_t vertical_cycles = 0;
  std::uint64_t contention_events = 0;
  std::uint64_t total_cycles() const {
    return horizontal_cycles + vertical_cycles;
  }
};

/// Configure marching-multicast roles for one horizontal stage with
/// neighborhood radius b (phase-0 heads at x == 0 mod b+1). Exposed for the
/// router-state unit tests.
void configure_horizontal_roles(Fabric& fabric, int b);

/// Same for the vertical stage (phase-0 heads at y == 0 mod b+1).
void configure_vertical_roles(Fabric& fabric, int b);

/// Run a full neighborhood exchange of `payloads` (one word vector per
/// core, row-major) with radius b on a width x height fabric. Cycle-steps
/// the wavelet-level simulator; intended for validation-scale grids.
ExchangeResult neighborhood_exchange(
    int width, int height, int b,
    const std::vector<std::vector<std::uint32_t>>& payloads);

/// Closed-form cycle estimate for one marching-multicast stage: b+1 phases,
/// each streaming `words_per_head` words plus a command wavelet through a
/// pipeline of depth b. Tests compare the simulator against this.
std::uint64_t expected_stage_cycles(int b, std::size_t words_per_head);

}  // namespace wsmd::wse
