#include "wse/router.hpp"

#include "util/error.hpp"

namespace wsmd::wse {

RouteDecision route_upstream_wavelet(VcRouterState& vc, const Wavelet& w) {
  RouteDecision d;
  switch (vc.role) {
    case McastRole::Idle:
      // Not part of this channel's multicast: drop silently. (Configured
      // routes on hardware would never deliver here.)
      return d;

    case McastRole::Head:
      // A head receives no upstream traffic in a correctly scheduled march;
      // tolerate stray command remnants (clipped domains at grid edges).
      return d;

    case McastRole::Body: {
      if (w.kind == Wavelet::Kind::Data) {
        d.to_core = true;
        d.forward = true;
        d.downstream_wavelet = w;
        ++vc.forwarded;
        ++vc.delivered;
        return d;
      }
      // Command wavelet: pop-and-react to a leading Advance (only the first
      // body in the chain sees it — it pops the command before forwarding,
      // exactly the paper's "body tiles are configured to pop advance
      // commands"); pass Reset through untouched for the tail.
      Wavelet fwd = w;
      if (!fwd.commands.empty() && fwd.commands.front() == RouterCmd::Advance) {
        fwd.commands.erase(fwd.commands.begin());
        vc.role = McastRole::Head;
      }
      if (!fwd.commands.empty()) {
        d.forward = true;
        d.downstream_wavelet = std::move(fwd);
        ++vc.forwarded;
      }
      return d;
    }

    case McastRole::Tail: {
      if (w.kind == Wavelet::Kind::Data) {
        d.to_core = true;
        ++vc.delivered;
        return d;
      }
      // Command wavelets end their journey at the tail (the multicast
      // domain boundary). Normally the first body already popped the
      // Advance and the tail sees a leading Reset, rejoining as Body. With
      // b == 1 there is no body: the tail itself pops the Advance and
      // becomes the next Head.
      if (!w.commands.empty() && w.commands.front() == RouterCmd::Advance) {
        vc.role = McastRole::Head;
      } else {
        for (const RouterCmd c : w.commands) {
          if (c == RouterCmd::Reset) {
            vc.role = McastRole::Body;
            break;
          }
        }
      }
      return d;
    }
  }
  return d;
}

}  // namespace wsmd::wse
