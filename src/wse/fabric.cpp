#include "wse/fabric.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wsmd::wse {

Fabric::Fabric(int width, int height, int num_vcs)
    : width_(width), height_(height), num_vcs_(num_vcs) {
  WSMD_REQUIRE(width_ > 0 && height_ > 0, "fabric dimensions must be positive");
  WSMD_REQUIRE(num_vcs_ > 0 && num_vcs_ <= 24,
               "WSE routers support up to 24 virtual channels");
  tiles_.resize(static_cast<std::size_t>(width_) * height_);
  for (auto& t : tiles_) t.vc.resize(static_cast<std::size_t>(num_vcs_));
  link_writes_.assign(static_cast<std::size_t>(width_) * height_ * 4, 0);
}

Fabric::Tile& Fabric::at(int x, int y) {
  return tiles_[static_cast<std::size_t>(y) * width_ + x];
}

const Fabric::Tile& Fabric::at(int x, int y) const {
  return tiles_[static_cast<std::size_t>(y) * width_ + x];
}

void Fabric::set_role(int x, int y, int vc, McastRole role, Port downstream) {
  WSMD_REQUIRE(in_bounds(x, y), "tile (" << x << "," << y << ") out of bounds");
  WSMD_REQUIRE(vc >= 0 && vc < num_vcs_, "virtual channel out of range");
  auto& s = at(x, y).vc[static_cast<std::size_t>(vc)].router;
  s.role = role;
  s.downstream = downstream;
}

McastRole Fabric::role(int x, int y, int vc) const {
  WSMD_REQUIRE(in_bounds(x, y), "tile out of bounds");
  return at(x, y).vc[static_cast<std::size_t>(vc)].router.role;
}

void Fabric::queue_send(int x, int y, int vc, std::vector<std::uint32_t> data,
                        std::vector<RouterCmd> commands, bool loopback) {
  WSMD_REQUIRE(in_bounds(x, y), "tile out of bounds");
  WSMD_REQUIRE(vc >= 0 && vc < num_vcs_, "virtual channel out of range");
  auto& s = at(x, y).vc[static_cast<std::size_t>(vc)];
  WSMD_REQUIRE(!s.send_queued, "tile already has a queued send on this vc");
  s.send_data = std::move(data);
  s.send_commands = std::move(commands);
  s.send_pos = 0;
  s.send_queued = true;
  s.command_sent = false;
  s.loopback = loopback;
}

const std::vector<std::uint32_t>& Fabric::received(int x, int y, int vc) const {
  WSMD_REQUIRE(in_bounds(x, y), "tile out of bounds");
  WSMD_REQUIRE(vc >= 0 && vc < num_vcs_, "virtual channel out of range");
  return at(x, y).vc[static_cast<std::size_t>(vc)].recv;
}

void Fabric::port_offset(Port p, int& dx, int& dy) {
  switch (p) {
    case Port::North: dx = 0; dy = -1; return;
    case Port::South: dx = 0; dy = 1; return;
    case Port::East: dx = 1; dy = 0; return;
    case Port::West: dx = -1; dy = 0; return;
    case Port::Core: dx = 0; dy = 0; return;
  }
  dx = dy = 0;
}

void Fabric::emit(int x, int y, int vc, Port p, Wavelet w) {
  int dx, dy;
  port_offset(p, dx, dy);
  const int nx = x + dx, ny = y + dy;
  if (!in_bounds(nx, ny)) return;  // clipped at the wafer edge

  // One wavelet per physical link per cycle, shared across VCs. The
  // marching multicast schedule must never double-book a link.
  const std::size_t port_idx = static_cast<std::size_t>(p);
  WSMD_REQUIRE(port_idx < 4, "emit is for mesh links only");
  auto& score =
      link_writes_[(static_cast<std::size_t>(y) * width_ + x) * 4 + port_idx];
  if (++score > 1) ++contention_;

  at(nx, ny).vc[static_cast<std::size_t>(vc)].inbox_next.push_back(std::move(w));
}

void Fabric::step() {
  std::fill(link_writes_.begin(), link_writes_.end(), 0);

  // Phase A: route wavelets that arrived at the start of this cycle.
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      for (int vc = 0; vc < num_vcs_; ++vc) {
        auto& s = at(x, y).vc[static_cast<std::size_t>(vc)];
        for (Wavelet& w : s.inbox) {
          const Port down = s.router.downstream;
          const McastRole before = s.router.role;
          RouteDecision d = route_upstream_wavelet(s.router, w);
          if (before != McastRole::Head && s.router.role == McastRole::Head) {
            s.promoted_this_cycle = true;
          }
          if (d.to_core && w.kind == Wavelet::Kind::Data) {
            s.recv.push_back(w.data);
          }
          if (d.forward) {
            emit(x, y, vc, down, std::move(d.downstream_wavelet));
          }
        }
        s.inbox.clear();
      }
    }
  }

  // Phase B: head cores inject one wavelet per cycle (dataflow-triggered:
  // the send thread progresses only while the tile holds the Head role).
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      for (int vc = 0; vc < num_vcs_; ++vc) {
        auto& s = at(x, y).vc[static_cast<std::size_t>(vc)];
        if (!s.send_queued || s.router.role != McastRole::Head) continue;
        if (s.promoted_this_cycle) continue;  // router turnaround cycle
        if (s.send_pos < s.send_data.size()) {
          const std::uint32_t word = s.send_data[s.send_pos++];
          // Loopback: the head's own core receives its payload too (the
          // paper's row buffer holds the tile's own atom at the center);
          // enabled on one channel per axis by the exchange driver.
          if (s.loopback) s.recv.push_back(word);
          emit(x, y, vc, s.router.downstream, Wavelet::make_data(word));
        } else if (!s.command_sent) {
          s.command_sent = true;
          if (!s.send_commands.empty()) {
            emit(x, y, vc, s.router.downstream,
                 Wavelet::make_command(s.send_commands));
          }
          // "The head proceeds to the tail state" once its transmission
          // completes (paper Sec. III-B).
          s.router.role = McastRole::Tail;
        }
      }
    }
  }

  // Phase C: next cycle's inboxes become current.
  for (auto& t : tiles_) {
    for (auto& s : t.vc) {
      s.inbox.swap(s.inbox_next);
      s.inbox_next.clear();
      s.promoted_this_cycle = false;
    }
  }
  ++cycle_;
}

bool Fabric::quiescent() const {
  for (const auto& t : tiles_) {
    for (const auto& s : t.vc) {
      if (!s.inbox.empty() || !s.inbox_next.empty()) return false;
      if (s.send_queued &&
          (s.send_pos < s.send_data.size() || !s.command_sent)) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t Fabric::run_until_quiescent(std::uint64_t max_cycles) {
  const std::uint64_t start = cycle_;
  while (!quiescent()) {
    WSMD_REQUIRE(cycle_ - start < max_cycles,
                 "fabric failed to quiesce in " << max_cycles
                                                << " cycles: schedule bug");
    step();
  }
  return cycle_ - start;
}

void Fabric::clear_traffic() {
  for (auto& t : tiles_) {
    for (auto& s : t.vc) {
      s.inbox.clear();
      s.inbox_next.clear();
      s.recv.clear();
      s.send_data.clear();
      s.send_commands.clear();
      s.send_pos = 0;
      s.send_queued = false;
      s.command_sent = false;
      s.router.role = McastRole::Idle;
    }
  }
}

}  // namespace wsmd::wse
