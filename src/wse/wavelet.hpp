#pragma once

/// \file wavelet.hpp
/// Fabric message units for the wafer-scale engine simulator.
///
/// The WSE fabric moves single 32-bit "wavelets" (or hardware-streamed
/// vectors of them) between neighboring tiles, one per cycle per physical
/// link direction (paper Sec. IV-A). Command wavelets carry lists of router
/// commands that mutate router state in flight — the mechanism behind the
/// marching multicast's role rotation (paper Fig. 4).

#include <cstdint>
#include <vector>

namespace wsmd::wse {

/// Router command carried by a command wavelet (paper Sec. III-B):
/// ADV advances a tile's multicast role to its next state, RST resets the
/// tail back to body.
enum class RouterCmd : std::uint8_t { Advance, Reset };

/// One 32-bit flit on a virtual channel: either a data word or a command
/// list. (Hardware encodes command lists compactly inside control wavelets;
/// the simulator keeps them as a vector for clarity — grids under test are
/// small.)
struct Wavelet {
  enum class Kind : std::uint8_t { Data, Command } kind = Kind::Data;
  /// Data payload (valid when kind == Data). The simulator transports
  /// opaque 32-bit words; the MD layer packs FP32 coordinates into them.
  std::uint32_t data = 0;
  /// Remaining router-command list (valid when kind == Command). Routers
  /// may react to and/or pop the first element as the wavelet propagates.
  std::vector<RouterCmd> commands;

  static Wavelet make_data(std::uint32_t word) {
    Wavelet w;
    w.kind = Kind::Data;
    w.data = word;
    return w;
  }
  static Wavelet make_command(std::vector<RouterCmd> cmds) {
    Wavelet w;
    w.kind = Kind::Command;
    w.commands = std::move(cmds);
    return w;
  }
};

/// Mesh directions. Core is the local port between a tile's router and its
/// compute core.
enum class Port : std::uint8_t { North, South, East, West, Core };

inline Port opposite(Port p) {
  switch (p) {
    case Port::North: return Port::South;
    case Port::South: return Port::North;
    case Port::East: return Port::West;
    case Port::West: return Port::East;
    case Port::Core: return Port::Core;
  }
  return Port::Core;
}

}  // namespace wsmd::wse
