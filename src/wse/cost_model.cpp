#include "wse/cost_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wsmd::wse {

CostModel CostModel::paper_baseline() {
  // Components from paper Table V baseline; clock chosen so the Ta-class
  // timestep (~3,702 ns from Table II) is ~3,477 cycles (Sec. V-B).
  return CostModel(Components{6.0, 21.0, 92.0, 574.0}, 0.94);
}

double CostModel::A_ns() const {
  // Every candidate pays multicast; rejected candidates pay the miss check.
  // In the Table II basis the miss check is folded into A because rejects
  // dominate (ncand >> ninter).
  return c_.mcast_per_candidate * f_.mcast + c_.miss_per_reject * f_.miss;
}

double CostModel::B_ns() const {
  // Interactions pay the interaction cost instead of the miss check.
  return c_.per_interaction * f_.interaction - c_.miss_per_reject * f_.miss;
}

double CostModel::C_ns() const { return c_.fixed * f_.fixed; }

double CostModel::timestep_seconds(double ncandidate,
                                   double ninteraction) const {
  WSMD_REQUIRE(ncandidate >= 0.0 && ninteraction >= 0.0,
               "counts must be non-negative");
  WSMD_REQUIRE(ninteraction <= ncandidate,
               "interactions are a subset of candidates");
  const double ns = c_.mcast_per_candidate * f_.mcast * ncandidate +
                    c_.miss_per_reject * f_.miss * (ncandidate - ninteraction) +
                    c_.per_interaction * f_.interaction * ninteraction +
                    c_.fixed * f_.fixed;
  return ns * 1e-9;
}

double CostModel::steps_per_second(double ncandidate,
                                   double ninteraction) const {
  return 1.0 / timestep_seconds(ncandidate, ninteraction);
}

double CostModel::timestep_cycles(double ncandidate,
                                  double ninteraction) const {
  return timestep_seconds(ncandidate, ninteraction) * clock_ghz_ * 1e9;
}

double CostModel::ghost_core_cycles() const {
  return c_.mcast_per_candidate * f_.mcast * clock_ghz_;
}

double CostModel::halo_exchange_cycles(int shard_w, int shard_h, int b) const {
  WSMD_REQUIRE(shard_w > 0 && shard_h > 0, "shard must be non-empty");
  WSMD_REQUIRE(b >= 0, "neighborhood radius must be non-negative");
  const double inner = static_cast<double>(shard_w) * shard_h;
  const double outer =
      static_cast<double>(shard_w + 2 * b) * (shard_h + 2 * b);
  const double ghost_cores = outer - inner;
  return ghost_cores * ghost_core_cycles();
}

double CostModel::candidates_for_b(int b) {
  WSMD_REQUIRE(b >= 0, "neighborhood radius must be non-negative");
  const double side = 2.0 * b + 1.0;
  return side * side - 1.0;
}

std::vector<OptimizationStage> optimization_history() {
  // The first functioning EAM code was 5.6x slower than the performance
  // model (Sec. V-G). Tungsten-level work brought it within 2x; manual
  // assembly edits closed the rest. Cumulative component factors are
  // authored explicitly (monotonically non-increasing per component) so
  // the two landmarks hold exactly: stage 10 ends near 2x, stage 19 at 1x.
  struct Row {
    const char* name;
    bool assembly;
    double mcast, miss, interaction, fixed;
  };
  const Row rows[] = {
      {"first working EAM code", false, 5.6, 5.6, 5.6, 5.6},
      // --- Tungsten (high-level DSL) optimizations ---
      {"vectorize candidate distance loop", false, 5.6, 4.4, 5.6, 5.6},
      {"vectorize density/force spline loop", false, 5.6, 4.4, 4.2, 5.6},
      {"remove unused multi-type features", false, 5.0, 4.0, 3.8, 5.0},
      {"interleave position/velocity memory layout", false, 4.2, 3.6, 3.4, 4.4},
      {"hoist cutoff constant, fuse compare", false, 4.2, 3.2, 3.4, 4.4},
      {"minimize conditional logic in gather", false, 4.2, 2.9, 3.1, 3.9},
      {"batch neighborhood receive buffers", false, 3.2, 2.7, 3.1, 3.4},
      {"precompute spline segment scale", false, 3.2, 2.7, 2.6, 3.0},
      {"single-pass embedding accumulate", false, 2.9, 2.5, 2.3, 2.6},
      {"restructure exchange double-buffering", false, 2.3, 2.1, 2.0, 2.1},
      // --- manual assembly optimizations ---
      {"reorder FP pipeline to avoid stalls", true, 2.3, 1.9, 1.75, 2.1},
      {"reuse stream descriptor registers", true, 1.9, 1.9, 1.75, 1.9},
      {"shift array offsets to avoid bank conflicts", true, 1.9, 1.7, 1.55, 1.9},
      {"dual-issue distance compare", true, 1.9, 1.5, 1.55, 1.9},
      {"hardware offload: fabric stream lengths", true, 1.6, 1.5, 1.55, 1.7},
      {"fuse Newton-Raphson rsqrt iterations", true, 1.6, 1.5, 1.35, 1.7},
      {"software-pipeline force accumulate", true, 1.45, 1.4, 1.2, 1.55},
      {"tighten Verlet integration microcode", true, 1.25, 1.2, 1.1, 1.25},
      {"final instruction schedule tuning", true, 1.0, 1.0, 1.0, 1.0},
  };
  std::vector<OptimizationStage> stages;
  for (const Row& r : rows) {
    stages.push_back(
        {r.name, r.assembly, {r.mcast, r.miss, r.interaction, r.fixed}});
  }
  return stages;
}

}  // namespace wsmd::wse
