#pragma once

/// \file router.hpp
/// Per-tile fabric router for the marching-multicast simulator.
///
/// Each virtual channel of a router participating in a marching multicast is
/// in one of three logical roles (paper Fig. 4a):
///   Head — accepts data from its local core and multicasts downstream;
///   Body — forwards upstream data downstream AND delivers it to its core;
///   Tail — delivers upstream data to its core only (end of the domain).
///
/// Role rotation is driven by command wavelets the head emits after its data
/// vector: the head itself advances to Tail, the first body downstream pops
/// an Advance and becomes Head, and the old tail absorbs a Reset and becomes
/// Body (paper Sec. III-B; the hardware uses a 4-state machine because a
/// router cannot swap input and output configuration in the same cycle —
/// the simulator performs the swap atomically between cycles and documents
/// the correspondence here).

#include <cstdint>

#include "wse/wavelet.hpp"

namespace wsmd::wse {

/// Logical multicast role of one virtual channel at one tile.
enum class McastRole : std::uint8_t { Idle, Head, Body, Tail };

/// Per-VC router configuration and state.
struct VcRouterState {
  McastRole role = McastRole::Idle;
  /// Downstream direction of this channel's data flow (East for the
  /// left-to-right channel, West for right-to-left, etc.).
  Port downstream = Port::East;
  /// Body tiles pop-and-react to a leading Advance; tails react to Reset.
  /// (Fixed behavior in this implementation; kept here for readability.)

  /// Statistics: wavelets forwarded downstream / delivered to core.
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;
};

/// Result of routing one wavelet at one tile.
struct RouteDecision {
  bool to_core = false;        ///< deliver payload to the local core
  bool forward = false;        ///< forward downstream
  Wavelet downstream_wavelet;  ///< what to forward (commands may be popped)
};

/// Apply the marching-multicast routing rules for a wavelet arriving from
/// upstream on channel `vc`. Mutates the role on command wavelets.
RouteDecision route_upstream_wavelet(VcRouterState& vc, const Wavelet& w);

}  // namespace wsmd::wse
