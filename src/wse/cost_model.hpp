#pragma once

/// \file cost_model.hpp
/// Per-tile timestep cost model for the wafer-scale MD algorithm.
///
/// The paper shows (Sec. V-B, Table II) that the wall-clock time of one
/// timestep is captured to r^2 = 0.9998 by
///
///     twall = A * ncandidate + B * ninteraction + C
///     A = 26.6 ns   B = 71.4 ns   C = 574.0 ns
///
/// and re-expresses the same model in a finer basis for the optimization
/// projections (Table V):
///
///     twall = Mcast * ncand + Miss * (ncand - ninter)
///           + Interaction * ninter + Fixed
///     Mcast = 6 ns, Miss = 21 ns, Interaction = 92 ns, Fixed = 574 ns
///
/// (consistency: A = Mcast + Miss ~ 27 ns; B = Interaction - Miss ~ 71 ns).
///
/// CostModel implements the finer basis with multipliers for each of the
/// paper's four projected optimizations (Table V) and for the optimization
/// history of Fig. 10. Cycle counts use the clock implied by the paper's
/// ~3,477-cycle timestep for the Ta-class configuration (~0.94 GHz).

#include <cstdint>
#include <string>
#include <vector>

namespace wsmd::wse {

class CostModel {
 public:
  /// Component costs in nanoseconds (Table V baseline basis).
  struct Components {
    double mcast_per_candidate = 6.0;
    double miss_per_reject = 21.0;
    double per_interaction = 92.0;
    double fixed = 574.0;
  };

  /// Multiplicative factors applied by optimizations (all 1.0 = baseline).
  struct Factors {
    double mcast = 1.0;
    double miss = 1.0;         ///< e.g. 0.1 = neighbor list reused 10 steps
    double interaction = 1.0;  ///< e.g. 0.5 = force symmetry
    double fixed = 1.0;        ///< e.g. 0.5 = fixed-cost tuning
  };

  CostModel() = default;
  CostModel(Components components, double clock_ghz)
      : c_(components), clock_ghz_(clock_ghz) {}

  /// The paper's measured baseline (Tables II and V).
  static CostModel paper_baseline();

  const Components& components() const { return c_; }
  Factors& factors() { return f_; }
  const Factors& factors() const { return f_; }
  double clock_ghz() const { return clock_ghz_; }

  /// Effective Table II coefficients under the current factors.
  double A_ns() const;  ///< per candidate
  double B_ns() const;  ///< per interaction (beyond candidate cost)
  double C_ns() const;  ///< fixed

  /// Wall-clock seconds for one timestep of a worker with the given
  /// candidate/interaction counts.
  double timestep_seconds(double ncandidate, double ninteraction) const;

  /// Timesteps per second (the paper's headline metric).
  double steps_per_second(double ncandidate, double ninteraction) const;

  /// Core-clock cycles for one timestep (for the fabric-simulator's
  /// cycle counters).
  double timestep_cycles(double ncandidate, double ninteraction) const;

  /// Modeled cycles to deliver one ghost core's payload across a shard
  /// boundary (the multicast per-hop cost under the current factors).
  double ghost_core_cycles() const;

  /// Modeled cycles for one refresh of the (2b+1)-deep ghost halo of a
  /// free-standing rectangular W x H core shard: every ghost core's
  /// payload crosses the shard boundary once, at ghost_core_cycles().
  /// Callers with shards embedded in a finite grid should clip the halo to
  /// the grid and charge ghost_core_cycles() per surviving ghost core
  /// (engine::ShardedWafer does). This is what a region-decomposed
  /// execution (or a multi-die tiling) pays on top of the per-tile
  /// timestep cost.
  double halo_exchange_cycles(int shard_w, int shard_h, int b) const;

  /// Candidate count for a square neighborhood of radius b: (2b+1)^2 - 1.
  static double candidates_for_b(int b);

 private:
  Components c_{};
  Factors f_{};
  double clock_ghz_ = 0.94;
};

/// One entry of the paper's optimization journey (Sec. V-G, Fig. 10): a
/// named code change and the component factors it contributed. Cumulative
/// application takes the first working EAM code (5.6x slower than the
/// model) down to the calibrated baseline.
struct OptimizationStage {
  std::string name;
  bool assembly_level = false;  ///< Tungsten-level vs hand-edited assembly
  CostModel::Factors cumulative; ///< factors *after* this stage
};

/// The 19-stage history modeled after Sec. V-G: Tungsten-level changes
/// (vectorization, feature elimination, layout interleaving, conditional
/// minimization) reach within 2x of the model; manual assembly edits
/// (instruction reordering, stream-descriptor reuse, bank-conflict offsets,
/// hardware offloads) close the rest.
std::vector<OptimizationStage> optimization_history();

}  // namespace wsmd::wse
