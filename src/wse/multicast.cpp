#include "wse/multicast.hpp"

#include "util/error.hpp"

namespace wsmd::wse {

namespace {

/// Role of the tile at 1-D coordinate `u` for a channel whose data flows in
/// the positive direction, phase-0 heads at u == 0 (mod b+1).
McastRole positive_flow_role(int u, int b) {
  const int m = u % (b + 1);
  if (m == 0) return McastRole::Head;
  if (m == b) return McastRole::Tail;
  return McastRole::Body;
}

}  // namespace

void configure_horizontal_roles(Fabric& fabric, int b) {
  WSMD_REQUIRE(b >= 1, "marching multicast needs b >= 1");
  // The negative-direction channel is the exact mirror image of the
  // positive one (phase-0 heads anchored at the far edge), so its
  // promotion chain also starts inside the grid and every column is
  // visited.
  for (int y = 0; y < fabric.height(); ++y) {
    for (int x = 0; x < fabric.width(); ++x) {
      fabric.set_role(x, y, kVcEast, positive_flow_role(x, b), Port::East);
      fabric.set_role(x, y, kVcWest,
                      positive_flow_role(fabric.width() - 1 - x, b),
                      Port::West);
    }
  }
}

void configure_vertical_roles(Fabric& fabric, int b) {
  WSMD_REQUIRE(b >= 1, "marching multicast needs b >= 1");
  for (int y = 0; y < fabric.height(); ++y) {
    for (int x = 0; x < fabric.width(); ++x) {
      fabric.set_role(x, y, kVcSouth, positive_flow_role(y, b), Port::South);
      fabric.set_role(x, y, kVcNorth,
                      positive_flow_role(fabric.height() - 1 - y, b),
                      Port::North);
    }
  }
}

ExchangeResult neighborhood_exchange(
    int width, int height, int b,
    const std::vector<std::vector<std::uint32_t>>& payloads) {
  WSMD_REQUIRE(width > 0 && height > 0, "bad fabric dimensions");
  WSMD_REQUIRE(b >= 0, "neighborhood radius must be non-negative");
  WSMD_REQUIRE(payloads.size() ==
                   static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
               "one payload per core required");

  ExchangeResult result;
  if (b == 0) {
    result.gathered = payloads;
    return result;
  }

  Fabric fabric(width, height, kNumExchangeVcs);
  const std::vector<RouterCmd> march = {RouterCmd::Advance, RouterCmd::Reset};

  // Horizontal stage: payloads travel +-b columns. Loopback on the East
  // channel only, so each core's own payload appears exactly once.
  configure_horizontal_roles(fabric, b);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const auto& p = payloads[static_cast<std::size_t>(y) * width + x];
      fabric.queue_send(x, y, kVcEast, p, march, /*loopback=*/true);
      fabric.queue_send(x, y, kVcWest, p, march, /*loopback=*/false);
    }
  }
  result.horizontal_cycles = fabric.run_until_quiescent();

  // Row gather: own + west atoms (East channel) then east atoms (West).
  std::vector<std::vector<std::uint32_t>> row_gather(payloads.size());
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      auto& rg = row_gather[static_cast<std::size_t>(y) * width + x];
      const auto& east = fabric.received(x, y, kVcEast);
      const auto& west = fabric.received(x, y, kVcWest);
      rg.reserve(east.size() + west.size());
      rg.insert(rg.end(), east.begin(), east.end());
      rg.insert(rg.end(), west.begin(), west.end());
    }
  }

  // Vertical stage: accumulated row data travels +-b rows (paper: "the
  // vertical stage differs only in its transfer size").
  fabric.clear_traffic();
  configure_vertical_roles(fabric, b);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const auto& rg = row_gather[static_cast<std::size_t>(y) * width + x];
      fabric.queue_send(x, y, kVcSouth, rg, march, /*loopback=*/true);
      fabric.queue_send(x, y, kVcNorth, rg, march, /*loopback=*/false);
    }
  }
  result.vertical_cycles = fabric.run_until_quiescent();

  result.gathered.resize(payloads.size());
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      auto& g = result.gathered[static_cast<std::size_t>(y) * width + x];
      const auto& south = fabric.received(x, y, kVcSouth);
      const auto& north = fabric.received(x, y, kVcNorth);
      g.reserve(south.size() + north.size());
      g.insert(g.end(), south.begin(), south.end());
      g.insert(g.end(), north.begin(), north.end());
    }
  }
  result.contention_events = fabric.contention_events();
  return result;
}

std::uint64_t expected_stage_cycles(int b, std::size_t words_per_head) {
  // Each of the b+1 phases spends L cycles streaming data, 1 cycle on the
  // command wavelet, and 1 router-turnaround cycle promoting the next head
  // (phase period L+2). The final phase's command takes b hops to reach
  // its tail and one more cycle to be consumed:
  //   total = b*(L+2) + L + b + 1 = (b+1)(L+1) + 2b.
  // Matches the simulator exactly for uniform payloads (verified by the
  // multicast tests).
  const auto L = static_cast<std::uint64_t>(words_per_head);
  const auto bb = static_cast<std::uint64_t>(b);
  return (bb + 1) * (L + 1) + 2 * bb;
}

}  // namespace wsmd::wse
