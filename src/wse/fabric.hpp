#pragma once

/// \file fabric.hpp
/// Cycle-stepped simulator of a rectangular WSE tile fabric.
///
/// Models what the marching multicast needs from the hardware of paper
/// Sec. IV-A:
///   * a 2-D mesh with single-wavelet-per-cycle links in each direction,
///     one-cycle latency between neighboring routers;
///   * per-virtual-channel router roles with command-wavelet transitions;
///   * core send threads that fire when their tile holds the Head role
///     (dataflow-triggered execution);
///   * per-core receive buffers fed by the router's core port.
///
/// The simulator is used to *verify* the communication schedule (delivery
/// sets, zero mesh-link contention, phase structure, cycle counts) on grids
/// of up to ~10^4 tiles. Production-scale (801,792-core) performance numbers
/// come from the calibrated cost model in cost_model.hpp, exactly as the
/// paper validates its own linear model against hardware counters.
///
/// Simplifications (documented, asserted elsewhere): the core ingests
/// deliveries from multiple VCs in the same cycle (hardware serializes at
/// one word/cycle through link-level buffers; this affects only the
/// absolute cycle count, which the cost model owns), and command wavelets
/// carry their command lists by value.

#include <cstdint>
#include <vector>

#include "wse/router.hpp"
#include "wse/wavelet.hpp"

namespace wsmd::wse {

class Fabric {
 public:
  Fabric(int width, int height, int num_vcs);

  int width() const { return width_; }
  int height() const { return height_; }
  int num_vcs() const { return num_vcs_; }

  /// Configure the multicast role of one tile on one channel.
  void set_role(int x, int y, int vc, McastRole role, Port downstream);
  McastRole role(int x, int y, int vc) const;

  /// Queue the data vector a core will multicast when it becomes Head on
  /// `vc` (sent exactly once; a trailing command wavelet with the given
  /// list is appended automatically when `commands` is non-empty). With
  /// `loopback`, the head's own core receives the payload as well — the
  /// exchange driver enables this on one channel per axis so each payload
  /// lands in its own core's buffer exactly once.
  void queue_send(int x, int y, int vc, std::vector<std::uint32_t> data,
                  std::vector<RouterCmd> commands, bool loopback = true);

  /// Words delivered to the core of (x, y) on channel `vc`, in arrival
  /// order (deterministic: the paper's neighbor list relies on this).
  const std::vector<std::uint32_t>& received(int x, int y, int vc) const;

  /// Advance one cycle.
  void step();

  /// Run until no wavelet is in flight and every queued send has finished,
  /// or until `max_cycles` elapse. Returns cycles executed; throws if the
  /// fabric failed to quiesce (a schedule bug).
  std::uint64_t run_until_quiescent(std::uint64_t max_cycles = 1000000);

  std::uint64_t cycle() const { return cycle_; }

  /// Cycles in which more than one wavelet was written to the same physical
  /// mesh link. The marching multicast must keep this at zero.
  std::uint64_t contention_events() const { return contention_; }

  /// True when nothing is in flight and all queued sends completed.
  bool quiescent() const;

  /// Reset receive buffers, send bookkeeping, and in-flight wavelets while
  /// keeping roles (used between the horizontal and vertical stages).
  void clear_traffic();

 private:
  struct PerVc {
    VcRouterState router;
    std::vector<std::uint32_t> send_data;   // queued payload
    std::vector<RouterCmd> send_commands;   // trailing command list
    std::size_t send_pos = 0;
    bool send_queued = false;
    bool command_sent = false;
    bool loopback = true;
    /// Promoted to Head this cycle: transmission starts next cycle (the
    /// hardware's 4-state machine cannot swap a router's input and output
    /// configuration in the same cycle — paper Fig. 4b).
    bool promoted_this_cycle = false;
    std::vector<std::uint32_t> recv;        // delivered to core
    std::vector<Wavelet> inbox;             // arriving this cycle
    std::vector<Wavelet> inbox_next;        // arriving next cycle
  };
  struct Tile {
    std::vector<PerVc> vc;
  };

  Tile& at(int x, int y);
  const Tile& at(int x, int y) const;
  bool in_bounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }
  static void port_offset(Port p, int& dx, int& dy);

  /// Write a wavelet onto the physical link leaving (x, y) toward `p`;
  /// lands in the neighbor's inbox for the next cycle. Counts contention.
  void emit(int x, int y, int vc, Port p, Wavelet w);

  int width_, height_, num_vcs_;
  std::vector<Tile> tiles_;
  std::uint64_t cycle_ = 0;
  std::uint64_t contention_ = 0;
  /// Per-cycle link-occupancy scoreboard: width*height*4 outbound ports.
  std::vector<std::uint8_t> link_writes_;
};

}  // namespace wsmd::wse
